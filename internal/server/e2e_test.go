package server

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/concurrent"
	"repro/internal/metrics"
)

// TestEndToEndHitRatioAgreement is the subsystem smoke test: a server on a
// loopback listener is driven by the cacheload client library, and the
// network-measured hit ratio must agree (±1%) with an in-process
// MeasureThroughput run over the same cache configuration and seed. Both
// sides replay the identical per-worker streams from concurrent.ZipfStreams,
// so any disagreement beyond eviction-timing noise means the server path
// (parse → KV adapter → shard) is mishandling requests.
func TestEndToEndHitRatioAgreement(t *testing.T) {
	const (
		capacity = 4096
		shards   = 8
		conns    = 2
		totalOps = 60000
		keySpace = 1 << 13
		seed     = int64(1)
	)

	// In-process reference run.
	ref, err := concurrent.NewQDLP(capacity, shards)
	if err != nil {
		t.Fatal(err)
	}
	refRes := concurrent.MeasureThroughput(ref, conns, totalOps, keySpace, seed)

	// Networked run against a fresh cache of the same shape.
	inner, err := concurrent.NewQDLP(capacity, shards)
	if err != nil {
		t.Fatal(err)
	}
	serverReg := metrics.NewRegistry()
	srv, err := New(Config{Store: concurrent.NewKV(inner, shards), Metrics: serverReg})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	clientReg := metrics.NewRegistry()
	loadRes, err := RunLoad(LoadConfig{
		Addr:     ln.Addr().String(),
		Conns:    conns,
		TotalOps: totalOps,
		KeySpace: keySpace,
		Seed:     seed,
		ValueLen: 32,
		Metrics:  clientReg,
	})
	if err != nil {
		t.Fatal(err)
	}

	if loadRes.Ops != totalOps {
		t.Fatalf("load issued %d ops, want %d", loadRes.Ops, totalOps)
	}
	if refRes.Ops != totalOps {
		t.Fatalf("reference issued %d ops, want %d", refRes.Ops, totalOps)
	}

	// Hit-ratio agreement within one percentage point. The two runs replay
	// identical streams; residual slack covers interleaving-dependent
	// eviction order across connections.
	delta := loadRes.HitRatio() - refRes.HitRatio()
	if delta < 0 {
		delta = -delta
	}
	t.Logf("network hit ratio %.4f, in-process %.4f (delta %.4f)",
		loadRes.HitRatio(), refRes.HitRatio(), delta)
	if delta > 0.01 {
		t.Fatalf("hit ratios disagree: network %.4f vs in-process %.4f",
			loadRes.HitRatio(), refRes.HitRatio())
	}

	// Server-side accounting must line up with the client's view.
	c := srv.Counters()
	gets := c.Gets.Load()
	hits := c.GetHits.Load()
	misses := c.GetMisses.Load()
	if gets != int64(totalOps) {
		t.Fatalf("server cmd_get = %d, want %d", gets, totalOps)
	}
	if hits+misses != gets {
		t.Fatalf("get_hits %d + get_misses %d != cmd_get %d", hits, misses, gets)
	}
	if hits != int64(loadRes.Hits) {
		t.Fatalf("server get_hits %d != client hits %d", hits, loadRes.Hits)
	}
	if c.Sets.Load() != int64(loadRes.Sets) {
		t.Fatalf("server cmd_set %d != client sets %d", c.Sets.Load(), loadRes.Sets)
	}

	// The two registries report the same families from opposite sides of the
	// wire, distinguished only by the side label, and must agree with the
	// run's own accounting.
	var serverExp, clientExp bytes.Buffer
	if err := serverReg.WriteText(&serverExp); err != nil {
		t.Fatal(err)
	}
	if err := clientReg.WriteText(&clientExp); err != nil {
		t.Fatal(err)
	}
	for exp, want := range map[*bytes.Buffer][]string{
		&serverExp: {
			fmt.Sprintf(`cache_requests_total{cmd="get",side="server"} %d`, totalOps),
			fmt.Sprintf(`cache_hits_total{policy="concurrent-qdlp",side="server"} %d`, loadRes.Hits),
		},
		&clientExp: {
			fmt.Sprintf(`cache_requests_total{cmd="get",side="client"} %d`, totalOps),
			fmt.Sprintf(`cache_hits_total{side="client"} %d`, loadRes.Hits),
			fmt.Sprintf(`cache_sets_total{side="client"} %d`, loadRes.Sets),
			fmt.Sprintf(`cache_request_duration_seconds_count{cmd="get",side="client"} %d`, totalOps),
		},
	} {
		for _, line := range want {
			if !strings.Contains(exp.String(), line+"\n") {
				t.Errorf("exposition missing %q", line)
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

package server

import (
	"testing"
	"time"
)

// TestRunLoadOpenLoopPacesArrivals pins the open-loop schedule: against a
// fast server, a rate-limited run must take roughly TotalOps/Rate seconds —
// the generator is pacing arrivals, not racing the closed loop.
func TestRunLoadOpenLoopPacesArrivals(t *testing.T) {
	_, addr := startServer(t, nil)
	const (
		totalOps = 400
		rate     = 2000.0 // => 200ms of scheduled arrivals
	)
	res, err := RunLoad(LoadConfig{
		Addr:     addr,
		Conns:    2,
		TotalOps: totalOps,
		KeySpace: 64,
		Seed:     1,
		Rate:     rate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != totalOps {
		t.Fatalf("ops = %d, want %d", res.Ops, totalOps)
	}
	want := time.Duration(float64(totalOps) / rate * float64(time.Second))
	if res.Elapsed < want*3/4 {
		t.Fatalf("run finished in %v; open loop at %v ops/s over %d ops should take ~%v",
			res.Elapsed, rate, totalOps, want)
	}
	if res.OpsPerSecond() > rate*1.5 {
		t.Fatalf("achieved %.0f ops/s against an offered rate of %.0f", res.OpsPerSecond(), rate)
	}
}

// TestRunLoadOpenLoopMeasuresQueueingDelay pins the coordinated-omission
// correction: when the server can only serve a fraction of the offered
// rate, the backlog each arrival inherits must show up in the recorded
// latency — measured from the scheduled arrival, not the delayed send. A
// closed-loop measurement of the same server would report only the ~5ms
// service time and hide the overload entirely.
func TestRunLoadOpenLoopMeasuresQueueingDelay(t *testing.T) {
	const service = 5 * time.Millisecond
	_, addr := startServer(t, func(cfg *Config) {
		cfg.Store = &slowStore{Store: cfg.Store, delay: service}
	})
	// One connection, arrivals every 1ms, service 5ms: the queue grows by
	// ~4ms per op, so late arrivals wait tens of milliseconds.
	res, err := RunLoad(LoadConfig{
		Addr:     addr,
		Conns:    1,
		TotalOps: 60,
		KeySpace: 8,
		Seed:     1,
		Rate:     1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	p99 := res.Latency.Percentile(99)
	if p99 < 10*service {
		t.Fatalf("open-loop p99 %v barely exceeds the %v service time: queueing delay is not being measured",
			p99, service)
	}
	t.Logf("service=%v offered=1000/s p99=%v (omission-corrected)", service, p99)
}

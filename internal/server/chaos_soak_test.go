package server

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/concurrent"
	"repro/internal/metrics"
)

// TestChaosSoak is the resilience capstone: the full client→proxy→server
// stack soaked under seeded fault injection. Every request crosses a chaos
// proxy injecting connect refusals, latency, fragmented writes, mid-stream
// resets, and black-holed reads; the self-healing clients must absorb the
// faults (reconnecting and retrying), the server must come out healthy (no
// panics, no leaked goroutines), and the measured hit ratio must still
// agree with an in-process reference run — chaos may cost throughput, never
// correctness.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		capacity = 2048
		shards   = 8
		conns    = 4
		totalOps = 20000
		keySpace = 1 << 12
		seed     = int64(7)
	)
	baseGoroutines := runtime.NumGoroutine()

	// In-process reference over the same cache shape and streams.
	ref, err := concurrent.NewQDLP(capacity, shards)
	if err != nil {
		t.Fatal(err)
	}
	refRes := concurrent.MeasureThroughput(ref, conns, totalOps, keySpace, seed)

	inner, err := concurrent.NewQDLP(capacity, shards)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	srv, err := New(Config{
		Store:        concurrent.NewKV(inner, shards),
		Metrics:      reg,
		WriteTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	proxy, err := chaos.NewProxy("", ln.Addr().String(), chaos.Config{
		Seed:          seed,
		RefuseProb:    0.02,
		LatencyProb:   0.05,
		Latency:       500 * time.Microsecond,
		PartialProb:   0.05,
		ResetProb:     0.002,
		BlackholeProb: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}

	loadRes, err := RunLoad(LoadConfig{
		Addr:     proxy.Addr(),
		Conns:    conns,
		TotalOps: totalOps,
		KeySpace: keySpace,
		Seed:     seed,
		ValueLen: 32,
		Metrics:  reg,
		Dial: &DialConfig{
			ConnectTimeout: 2 * time.Second,
			ReadTimeout:    750 * time.Millisecond,
			WriteTimeout:   2 * time.Second,
			MaxRetries:     8,
			BackoffBase:    time.Millisecond,
			BackoffMax:     50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("soak run failed outright: %v", err)
	}

	ctr := proxy.Counters()
	t.Logf("faults injected: %s", ctr)
	t.Logf("ops=%d errors=%d retries=%d reconnects=%d hit=%.4f (ref %.4f)",
		loadRes.Ops, loadRes.Errors, loadRes.Retries, loadRes.Reconnects,
		loadRes.HitRatio(), refRes.HitRatio())

	// The chaos config must actually have bitten — a soak that injected
	// nothing proves nothing.
	if ctr.Resets.Load()+ctr.Refused.Load()+ctr.BlackholedReads.Load() == 0 {
		t.Fatal("no connection-killing faults injected; soak is vacuous")
	}
	if loadRes.Reconnects == 0 {
		t.Fatal("clients never reconnected despite injected resets/refusals")
	}

	// The clients healed: nearly every op completed despite the faults.
	if loadRes.Errors > totalOps*2/100 {
		t.Fatalf("errors = %d (> 2%% of %d ops): retry policy not absorbing faults",
			loadRes.Errors, totalOps)
	}
	if loadRes.Ops < int64(totalOps)-loadRes.Errors {
		t.Fatalf("ops %d + errors %d < %d: requests lost without being counted",
			loadRes.Ops, loadRes.Errors, totalOps)
	}

	// Chaos costs throughput, never correctness: hit-ratio agreement with
	// the in-process reference, with slack for ops dropped to errors and
	// for eviction-order noise under retried interleavings.
	delta := loadRes.HitRatio() - refRes.HitRatio()
	if delta < 0 {
		delta = -delta
	}
	if delta > 0.05 {
		t.Fatalf("hit ratios diverged under chaos: network %.4f vs in-process %.4f",
			loadRes.HitRatio(), refRes.HitRatio())
	}

	// The server came through clean: zero panics, still serving on the
	// direct (fault-free) address.
	if n := srv.Counters().Panics.Load(); n != 0 {
		t.Fatalf("server panicked %d times under chaos", n)
	}
	direct, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("direct dial after soak: %v", err)
	}
	stats, err := direct.Stats()
	if err != nil {
		t.Fatalf("stats after soak: %v", err)
	}
	if _, err := StatInt(stats, "cmd_get"); err != nil {
		t.Fatal(err)
	}
	if err := direct.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean teardown, then prove nothing leaked: proxy relays and server
	// handlers must all unwind.
	if err := proxy.Close(); err != nil {
		t.Fatalf("proxy close: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > base %d\n%s",
				runtime.NumGoroutine(), baseGoroutines, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

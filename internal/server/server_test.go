package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/concurrent"
)

// startServer launches a qdlp-backed server on a loopback listener and
// returns it with its address. Cleanup shuts it down.
func startServer(t *testing.T, mutate func(*Config)) (*Server, string) {
	t.Helper()
	inner, err := concurrent.NewQDLP(4096, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Store:       concurrent.NewKV(inner, 8),
		MaxConns:    32,
		IdleTimeout: time.Minute,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	// Wait for Serve to register the listener: a test fast enough to reach
	// Cleanup first would otherwise Shutdown a server that doesn't know its
	// listener yet and hang waiting for Serve to return.
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-errCh; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// rawConn is a line-level test client over a plain socket.
type rawConn struct {
	t  *testing.T
	c  net.Conn
	br *bufio.Reader
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &rawConn{t: t, c: c, br: bufio.NewReader(c)}
}

func (r *rawConn) send(s string) {
	r.t.Helper()
	if _, err := io.WriteString(r.c, s); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rawConn) line() string {
	r.t.Helper()
	r.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := r.br.ReadString('\n')
	if err != nil {
		r.t.Fatalf("read line: %v", err)
	}
	return strings.TrimRight(line, "\r\n")
}

func (r *rawConn) expect(want string) {
	r.t.Helper()
	if got := r.line(); got != want {
		r.t.Fatalf("got %q, want %q", got, want)
	}
}

func TestServerBasicSession(t *testing.T) {
	_, addr := startServer(t, nil)
	rc := dialRaw(t, addr)

	rc.send("set foo 7 0 3\r\nbar\r\n")
	rc.expect("STORED")
	rc.send("get foo\r\n")
	rc.expect("VALUE foo 7 3")
	rc.expect("bar")
	rc.expect("END")
	rc.send("get missing\r\n")
	rc.expect("END")

	// Multi-key get with a miss in the middle.
	rc.send("set baz 0 0 1\r\nz\r\n")
	rc.expect("STORED")
	rc.send("get foo nope baz\r\n")
	rc.expect("VALUE foo 7 3")
	rc.expect("bar")
	rc.expect("VALUE baz 0 1")
	rc.expect("z")
	rc.expect("END")

	// gets carries a cas token.
	rc.send("gets foo\r\n")
	if got := rc.line(); !strings.HasPrefix(got, "VALUE foo 7 3 ") {
		t.Fatalf("gets header %q lacks cas", got)
	}
	rc.expect("bar")
	rc.expect("END")

	rc.send("delete foo\r\n")
	rc.expect("DELETED")
	rc.send("delete foo\r\n")
	rc.expect("NOT_FOUND")
	rc.send("get foo\r\n")
	rc.expect("END")

	// noreply set produces no response; the next get sees the value.
	rc.send("set quiet 0 0 2 noreply\r\nok\r\nget quiet\r\n")
	rc.expect("VALUE quiet 0 2")
	rc.expect("ok")
	rc.expect("END")

	// Protocol errors are recoverable.
	rc.send("bogus\r\n")
	rc.expect("ERROR")
	rc.send("get " + strings.Repeat("x", 300) + "\r\n")
	if got := rc.line(); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("got %q, want CLIENT_ERROR", got)
	}
	rc.send("get quiet\r\n")
	rc.expect("VALUE quiet 0 2")
	rc.expect("ok")
	rc.expect("END")
}

func TestServerStatsConsistency(t *testing.T) {
	srv, addr := startServer(t, nil)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("k%d", i%10))
		if v, found, err := c.Get(key); err != nil {
			t.Fatal(err)
		} else if found && len(v) == 0 {
			t.Fatal("empty hit")
		} else if !found {
			if err := c.Set(key, 0, []byte("value")); err != nil {
				t.Fatal(err)
			}
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	gets, _ := StatInt(st, "cmd_get")
	hits, _ := StatInt(st, "get_hits")
	misses, _ := StatInt(st, "get_misses")
	if gets != 50 {
		t.Fatalf("cmd_get = %d, want 50", gets)
	}
	if hits+misses != gets {
		t.Fatalf("hits %d + misses %d != gets %d", hits, misses, gets)
	}
	if misses != 10 || hits != 40 {
		t.Fatalf("hits=%d misses=%d, want 40/10", hits, misses)
	}
	items, _ := StatInt(st, "curr_items")
	if items != 10 {
		t.Fatalf("curr_items = %d", items)
	}
	bytes, _ := StatInt(st, "curr_bytes")
	if bytes != 50 { // 10 items × len("value")
		t.Fatalf("curr_bytes = %d", bytes)
	}
	if got := srv.Counters().Sets.Load(); got != 10 {
		t.Fatalf("cmd_set = %d", got)
	}
}

// A pipelined burst is answered completely and in order.
func TestServerPipelining(t *testing.T) {
	_, addr := startServer(t, nil)
	rc := dialRaw(t, addr)
	var b strings.Builder
	const n = 200
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "set k%d 0 0 2 noreply\r\nv%d\r\n", i%100, i%10)
		fmt.Fprintf(&b, "get k%d\r\n", i%100)
	}
	rc.send(b.String())
	for i := 0; i < n; i++ {
		rc.expect(fmt.Sprintf("VALUE k%d 0 2", i%100))
		rc.expect(fmt.Sprintf("v%d", i%10))
		rc.expect("END")
	}
}

func TestServerMaxConns(t *testing.T) {
	_, addr := startServer(t, func(cfg *Config) { cfg.MaxConns = 1 })
	rc1 := dialRaw(t, addr)
	rc1.send("stats\r\n")
	if got := rc1.line(); !strings.HasPrefix(got, "STAT ") {
		t.Fatalf("first conn broken: %q", got)
	}
	for rc1.line() != "END" {
	}
	rc2 := dialRaw(t, addr)
	rc2.expect("SERVER_ERROR too many connections")
	if _, err := rc2.br.ReadByte(); err != io.EOF {
		t.Fatalf("rejected conn not closed: %v", err)
	}
	// First connection still works.
	rc1.send("set a 0 0 1\r\nx\r\n")
	rc1.expect("STORED")
}

func TestServerIdleTimeout(t *testing.T) {
	_, addr := startServer(t, func(cfg *Config) { cfg.IdleTimeout = 100 * time.Millisecond })
	rc := dialRaw(t, addr)
	rc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := rc.br.ReadByte(); err != io.EOF {
		t.Fatalf("idle conn: got %v, want EOF", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("closed suspiciously fast: %v", elapsed)
	}
}

// An oversized set reports SERVER_ERROR and closes (the body was never
// consumed, so the stream cannot stay in sync).
func TestServerValueTooLarge(t *testing.T) {
	_, addr := startServer(t, func(cfg *Config) { cfg.MaxValueLen = 1024 })
	rc := dialRaw(t, addr)
	rc.send("set big 0 0 2048\r\n")
	rc.expect("SERVER_ERROR object too large for cache")
	if _, err := rc.br.ReadByte(); err != io.EOF {
		t.Fatalf("conn not closed after oversized set: %v", err)
	}
}

// Shutdown during a pipelined burst: every request already sent must get
// its complete response before the connection closes — drain, not drop.
func TestServerGracefulShutdownDrains(t *testing.T) {
	inner, err := concurrent.NewQDLP(4096, 8)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: concurrent.NewKV(inner, 8), IdleTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 500
	var b strings.Builder
	b.WriteString("set k 0 0 3\r\nval\r\n")
	for i := 0; i < n; i++ {
		b.WriteString("get k\r\n")
	}
	if _, err := io.WriteString(c, b.String()); err != nil {
		t.Fatal(err)
	}

	// Shut down while the burst is (very likely) mid-flight.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(ctx) }()

	br := bufio.NewReader(c)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	expect := func(want string) {
		t.Helper()
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("response dropped mid-drain: %v", err)
		}
		if got := strings.TrimRight(line, "\r\n"); got != want {
			t.Fatalf("got %q, want %q", got, want)
		}
	}
	expect("STORED")
	for i := 0; i < n; i++ {
		expect("VALUE k 0 3")
		expect("val")
		expect("END")
	}
	// After the drain the server closes the connection.
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("after drain: got %v, want EOF", err)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestServerExptimeSemantics pins the memcached exptime contract: negative
// exptime (or an absolute timestamp in the past) means "store already
// expired" — acknowledged, value never visible, any prior version dropped —
// while a positive exptime stores with a deadline: relative seconds up to
// 30 days, absolute unix timestamps beyond.
func TestServerExptimeSemantics(t *testing.T) {
	_, addr := startServer(t, nil)
	rc := dialRaw(t, addr)

	// Negative exptime on a fresh key: STORED, but the value is absent.
	rc.send("set gone 0 -1 3\r\nxyz\r\n")
	rc.expect("STORED")
	rc.send("get gone\r\n")
	rc.expect("END")

	// Negative exptime over a live key drops the previous version too.
	rc.send("set k 0 0 3\r\nold\r\n")
	rc.expect("STORED")
	rc.send("set k 0 -30 3\r\nnew\r\n")
	rc.expect("STORED")
	rc.send("get k\r\n")
	rc.expect("END")

	// Relative TTL well in the future: stored and immediately visible.
	rc.send("set ttl 0 60 3\r\nabc\r\n")
	rc.expect("STORED")
	rc.send("get ttl\r\n")
	rc.expect("VALUE ttl 0 3")
	rc.expect("abc")
	rc.expect("END")

	// Absolute timestamp in the future (> 30 days on the wire): visible.
	future := time.Now().Unix() + 3600
	rc.send(fmt.Sprintf("set abs 0 %d 3\r\nfut\r\n", future))
	rc.expect("STORED")
	rc.send("get abs\r\n")
	rc.expect("VALUE abs 0 3")
	rc.expect("fut")
	rc.expect("END")

	// Absolute timestamp in the past: already expired, same as negative.
	rc.send("set past 0 2592001 3\r\nold\r\n")
	rc.expect("STORED")
	rc.send("get past\r\n")
	rc.expect("END")

	// noreply suppresses STORED acks for both the already-expired and the
	// TTL store (memcached behavior).
	rc.send("set q1 0 -1 1 noreply\r\na\r\nset q2 0 9 1 noreply\r\nb\r\nget q1 q2\r\n")
	rc.expect("VALUE q2 0 1")
	rc.expect("b")
	rc.expect("END")
}

// TestResolveExptime pins the wire-exptime → absolute-deadline mapping at
// the 30-day boundary, where relative seconds hand over to absolute unix
// timestamps.
func TestResolveExptime(t *testing.T) {
	const now = int64(1_700_000_000) // far above the 30-day threshold
	const month = int64(exptimeAbsThreshold)
	cases := []struct {
		name     string
		exptime  int64
		expireAt int64
		expired  bool
	}{
		{"zero never expires", 0, 0, false},
		{"negative already expired", -1, 0, true},
		{"very negative already expired", -1 << 40, 0, true},
		{"one second relative", 1, now + 1, false},
		{"boundary is still relative", month, now + month, false},
		{"past boundary is absolute", month + 1, 0, true}, // 1971: long past
		{"absolute now is expired", now, 0, true},
		{"absolute future", now + 1, now + 1, false},
		{"absolute far future", now + 86400, now + 86400, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gotAt, gotExpired := resolveExptime(tc.exptime, now)
			if gotAt != tc.expireAt || gotExpired != tc.expired {
				t.Errorf("resolveExptime(%d, now) = (%d, %v), want (%d, %v)",
					tc.exptime, gotAt, gotExpired, tc.expireAt, tc.expired)
			}
		})
	}
}

package server

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/overload"
)

// expectGete reads one gete VALUE response (header, body, END) and returns
// the header's absolute exptime. The caller has already verified a hit is
// coming.
func expectGete(t *testing.T, rc *rawConn, key, value string, flags uint32) int64 {
	t.Helper()
	line := rc.line()
	fields := strings.Fields(line)
	if len(fields) != 6 || fields[0] != "VALUE" || fields[1] != key {
		t.Fatalf("bad gete header %q", line)
	}
	if f, _ := strconv.ParseUint(fields[2], 10, 32); uint32(f) != flags {
		t.Fatalf("gete flags = %s, want %d", fields[2], flags)
	}
	if n, _ := strconv.Atoi(fields[3]); n != len(value) {
		t.Fatalf("gete length = %s, want %d", fields[3], len(value))
	}
	exp, err := strconv.ParseInt(fields[5], 10, 64)
	if err != nil {
		t.Fatalf("gete exptime %q: %v", fields[5], err)
	}
	rc.expect(value)
	rc.expect("END")
	return exp
}

// TestTouchAndGeteWire pins the two TTL-management commands end to end:
// touch refreshes a live entry's deadline without moving its value, and
// gete serves the value along with its absolute expiry so a proxy can
// replicate TTLs faithfully.
func TestTouchAndGeteWire(t *testing.T) {
	_, addr := startServer(t, nil)
	rc := dialRaw(t, addr)

	rc.send("touch nope 60\r\n")
	rc.expect("NOT_FOUND")

	now := time.Now().Unix()
	rc.send("set k 7 60 3\r\nval\r\n")
	rc.expect("STORED")
	rc.send("gete k\r\n")
	exp := expectGete(t, rc, "k", "val", 7)
	if exp < now+58 || exp > now+62 {
		t.Fatalf("gete exptime %d, want ~%d", exp, now+60)
	}

	// Touch extends the deadline; the value never crossed the wire.
	rc.send("touch k 600\r\n")
	rc.expect("TOUCHED")
	rc.send("gete k\r\n")
	exp = expectGete(t, rc, "k", "val", 7)
	if exp < now+598 || exp > now+602 {
		t.Fatalf("after touch, exptime %d, want ~%d", exp, now+600)
	}

	// Touch to 0 clears the deadline entirely.
	rc.send("touch k 0\r\n")
	rc.expect("TOUCHED")
	rc.send("gete k\r\n")
	if exp = expectGete(t, rc, "k", "val", 7); exp != 0 {
		t.Fatalf("after touch 0, exptime %d, want 0", exp)
	}

	// A negative exptime expires the entry immediately, like set's.
	rc.send("touch k -1\r\n")
	rc.expect("TOUCHED")
	rc.send("get k\r\n")
	rc.expect("END")
	rc.send("gete k\r\n")
	rc.expect("END")

	// An absolute timestamp beyond the 30-day threshold is taken as-is.
	future := time.Now().Unix() + 3600
	rc.send("set abs 0 60 2\r\nab\r\n")
	rc.expect("STORED")
	rc.send(fmt.Sprintf("touch abs %d\r\n", future))
	rc.expect("TOUCHED")
	rc.send("gete abs\r\n")
	if exp = expectGete(t, rc, "abs", "ab", 0); exp != future {
		t.Fatalf("absolute touch exptime %d, want %d", exp, future)
	}

	// noreply swallows the acknowledgment; the effect still lands.
	rc.send("touch abs 0 noreply\r\ngete abs\r\n")
	if exp = expectGete(t, rc, "abs", "ab", 0); exp != 0 {
		t.Fatalf("noreply touch exptime %d, want 0", exp)
	}

	// gete is single-key by contract.
	rc.send("gete a b\r\n")
	if got := rc.line(); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("gete with two keys answered %q, want CLIENT_ERROR", got)
	}
}

// TestTouchKeepsEntryAlive drives the TTL clock: a touched entry survives
// its original deadline, an untouched one does not.
func TestTouchKeepsEntryAlive(t *testing.T) {
	srv, addr := startServer(t, nil)
	rc := dialRaw(t, addr)
	kv := srv.cfg.Store.(interface {
		SetNow(int64)
		AdvanceTTL(int64) int
	})

	rc.send("set keep 0 0 1\r\na\r\nset drop 0 0 1\r\nb\r\n")
	rc.expect("STORED")
	rc.expect("STORED")
	now := time.Now().Unix()
	base := now + 1000
	rc.send(fmt.Sprintf("touch keep %d\r\ntouch drop %d\r\n", base+5000, base+10))
	rc.expect("TOUCHED")
	rc.expect("TOUCHED")

	kv.SetNow(base + 100)
	kv.AdvanceTTL(base + 100)
	rc.send("get drop\r\n")
	rc.expect("END")
	rc.send("get keep\r\n")
	rc.expect("VALUE keep 0 1")
	rc.expect("a")
	rc.expect("END")

	// Touching an entry the clock already expired reports NOT_FOUND rather
	// than resurrecting it.
	rc.send(fmt.Sprintf("touch drop %d\r\n", base+9000))
	rc.expect("NOT_FOUND")
}

// TestClientTouchGetExpVersion exercises the client-side halves: Touch,
// GetExp (which must parse the extended five-token VALUE header), and the
// Version probe.
func TestClientTouchGetExpVersion(t *testing.T) {
	_, addr := startServer(t, nil)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if found, err := c.Touch([]byte("nope"), 60); err != nil || found {
		t.Fatalf("Touch(missing) = %v, %v", found, err)
	}
	if err := c.SetExp([]byte("k"), 3, 120, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	now := time.Now().Unix()
	value, flags, _, exp, found, err := c.GetExp([]byte("k"))
	if err != nil || !found || string(value) != "hello" || flags != 3 {
		t.Fatalf("GetExp = %q %d %v %v", value, flags, found, err)
	}
	if exp < now+118 || exp > now+122 {
		t.Fatalf("GetExp exptime %d, want ~%d", exp, now+120)
	}
	if found, err := c.Touch([]byte("k"), 0); err != nil || !found {
		t.Fatalf("Touch(live) = %v, %v", found, err)
	}
	if _, _, _, exp, _, err := c.GetExp([]byte("k")); err != nil || exp != 0 {
		t.Fatalf("after Touch 0: exp=%d err=%v", exp, err)
	}
	if _, _, _, _, found, err := c.GetExp([]byte("missing")); err != nil || found {
		t.Fatalf("GetExp(missing) = %v, %v", found, err)
	}

	v, err := c.Version()
	if err != nil || v != Version {
		t.Fatalf("Version() = %q, %v (want %q)", v, err, Version)
	}
}

// TestRetryBudgetGatesClientRetries wires a nearly-empty budget into a
// client pointed at a dead address: the initial-dial retry loop must stop
// as soon as the bucket runs dry instead of burning MaxRetries attempts.
func TestRetryBudgetGatesClientRetries(t *testing.T) {
	// Capacity 1 with a negligible earn rate: one retry is affordable, the
	// second is not.
	budget := overload.NewRetryBudget(0.001, 1)
	_, err := DialWithConfig(DialConfig{
		Addr:           "127.0.0.1:1", // reserved port: refuses instantly
		ConnectTimeout: 200 * time.Millisecond,
		MaxRetries:     50,
		BackoffBase:    time.Microsecond,
		BackoffMax:     time.Millisecond,
		Budget:         budget,
	})
	if err == nil {
		t.Fatal("dial against a dead port succeeded")
	}
	if got := budget.Exhausted(); got == 0 {
		t.Fatal("budget never reported exhaustion")
	}
	// 1 token paid for exactly 1 retry beyond the initial attempt.
	if got := budget.Tokens(); got >= 1 {
		t.Fatalf("budget still holds %v tokens", got)
	}
}

package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strconv"
)

// Client is a minimal text-protocol client for the subset this server
// speaks. It is synchronous and not safe for concurrent use; open one per
// goroutine (the closed-loop shape RunLoad uses).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	buf  []byte
}

// Dial connects to a cache server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 32<<10),
		bw:   bufio.NewWriterSize(conn, 32<<10),
	}, nil
}

// Close sends quit and closes the connection.
func (c *Client) Close() error {
	c.bw.WriteString("quit\r\n")
	c.bw.Flush()
	return c.conn.Close()
}

// Get fetches one key, returning (value, found). The returned slice is
// owned by the caller.
func (c *Client) Get(key []byte) ([]byte, bool, error) {
	c.buf = append(c.buf[:0], "get "...)
	c.buf = append(c.buf, key...)
	c.buf = append(c.buf, "\r\n"...)
	if _, err := c.bw.Write(c.buf); err != nil {
		return nil, false, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, false, err
	}
	var value []byte
	found := false
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, false, err
		}
		switch {
		case bytes.Equal(line, []byte("END")):
			return value, found, nil
		case bytes.HasPrefix(line, []byte("VALUE ")):
			_, _, n, _, err := parseValueHeader(line)
			if err != nil {
				return nil, false, err
			}
			value = make([]byte, n+2)
			if _, err := io.ReadFull(c.br, value); err != nil {
				return nil, false, err
			}
			value = value[:n]
			found = true
		default:
			return nil, false, fmt.Errorf("server: unexpected get response %q", line)
		}
	}
}

// Set stores value under key.
func (c *Client) Set(key []byte, flags uint32, value []byte) error {
	c.buf = append(c.buf[:0], "set "...)
	c.buf = append(c.buf, key...)
	c.buf = append(c.buf, ' ')
	c.buf = strconv.AppendUint(c.buf, uint64(flags), 10)
	c.buf = append(c.buf, " 0 "...)
	c.buf = strconv.AppendInt(c.buf, int64(len(value)), 10)
	c.buf = append(c.buf, "\r\n"...)
	if _, err := c.bw.Write(c.buf); err != nil {
		return err
	}
	if _, err := c.bw.Write(value); err != nil {
		return err
	}
	if _, err := c.bw.WriteString("\r\n"); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if !bytes.Equal(line, []byte("STORED")) {
		return fmt.Errorf("server: set: %q", line)
	}
	return nil
}

// Delete removes key, reporting whether the server had it.
func (c *Client) Delete(key []byte) (bool, error) {
	c.buf = append(c.buf[:0], "delete "...)
	c.buf = append(c.buf, key...)
	c.buf = append(c.buf, "\r\n"...)
	if _, err := c.bw.Write(c.buf); err != nil {
		return false, err
	}
	if err := c.bw.Flush(); err != nil {
		return false, err
	}
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	switch {
	case bytes.Equal(line, []byte("DELETED")):
		return true, nil
	case bytes.Equal(line, []byte("NOT_FOUND")):
		return false, nil
	}
	return false, fmt.Errorf("server: delete: %q", line)
}

// Stats fetches the server's stats as a name→value map.
func (c *Client) Stats() (map[string]string, error) {
	if _, err := c.bw.WriteString("stats\r\n"); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if bytes.Equal(line, []byte("END")) {
			return out, nil
		}
		fields := bytes.SplitN(line, []byte(" "), 3)
		if len(fields) != 3 || !bytes.Equal(fields[0], []byte("STAT")) {
			return nil, fmt.Errorf("server: unexpected stats line %q", line)
		}
		out[string(fields[1])] = string(fields[2])
	}
}

// StatInt reads one numeric stat from a Stats map.
func StatInt(stats map[string]string, name string) (int64, error) {
	v, ok := stats[name]
	if !ok {
		return 0, fmt.Errorf("server: stat %q missing", name)
	}
	return strconv.ParseInt(v, 10, 64)
}

func (c *Client) readLine() ([]byte, error) {
	line, err := c.br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return line, nil
}

// parseValueHeader parses "VALUE <key> <flags> <bytes> [<cas>]".
func parseValueHeader(line []byte) (key []byte, flags uint32, n int, cas uint64, err error) {
	rest := line[len("VALUE "):]
	key, rest = nextToken(rest)
	flagsTok, rest := nextToken(rest)
	bytesTok, rest := nextToken(rest)
	casTok, _ := nextToken(rest)
	f, ok1 := parseUint(flagsTok, 1<<32-1)
	b, ok2 := parseUint(bytesTok, 1<<31)
	if key == nil || !ok1 || !ok2 {
		return nil, 0, 0, 0, fmt.Errorf("server: bad VALUE header %q", line)
	}
	if casTok != nil {
		c, ok := parseUint(casTok, 1<<63)
		if !ok {
			return nil, 0, 0, 0, fmt.Errorf("server: bad cas in %q", line)
		}
		cas = c
	}
	return key, uint32(f), int(b), cas, nil
}

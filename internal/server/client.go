package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/overload"
)

// ErrServerBusy is the answer to a request the server shed under overload.
// It is a protocol-level response, not a transport failure: the connection
// is healthy and the server chose not to do the work, so the client never
// retries it (a retry against an overloaded server is fuel on the fire).
// Callers distinguish it with errors.Is and decide whether to degrade
// (serve a miss, drop the write) or surface the pressure.
var ErrServerBusy = errors.New("server: busy (request shed under overload)")

// busyPrefix matches the server's shed reply. The reply line carries the
// reason ("SERVER_ERROR busy"), matched by prefix so future servers can
// append detail without breaking old clients.
var busyPrefix = []byte("SERVER_ERROR busy")

// DialConfig parameterizes a self-healing Client: per-operation deadlines,
// automatic reconnect with capped exponential backoff plus jitter, and a
// retry policy tuned per command class.
//
// The retry policy: gets are idempotent and retried up to MaxRetries times
// across reconnects. Sets and deletes are replayed at most once after a
// reconnect — a mutation whose response was lost may or may not have been
// applied, and one replay converges the cache either way without letting a
// flapping link hammer the same write forever. Protocol-level errors (the
// server answered, just not what we expected) are never retried: the
// connection is healthy and the answer is real.
type DialConfig struct {
	// Addr is the server address.
	Addr string
	// ConnectTimeout bounds each dial. <=0 means 5 seconds.
	ConnectTimeout time.Duration
	// ReadTimeout bounds each response read; 0 means no deadline.
	ReadTimeout time.Duration
	// WriteTimeout bounds each request flush; 0 means no deadline.
	WriteTimeout time.Duration
	// MaxRetries is the number of additional attempts after a transport
	// failure (gets; dials use it too). 0 disables retrying entirely, which
	// is the plain Dial behavior.
	MaxRetries int
	// BackoffBase and BackoffMax bound the reconnect backoff: attempt n
	// sleeps a uniform jittered duration in (0, min(Base<<(n-1), Max)].
	// <=0 means 5ms base, 1s max.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed fixes the jitter stream, keeping load runs reproducible.
	Seed int64
	// Budget, when non-nil, gates every retry (including initial-dial
	// retries) through a shared token bucket: each completed operation
	// deposits a fraction of a token, each retry withdraws a whole one.
	// Under a healthy server the bucket stays full and retries flow; under
	// a broken one the bucket drains and the client fails fast instead of
	// amplifying the outage. Share one budget across all clients talking
	// to the same backend. nil means retries are bounded only by
	// MaxRetries (the per-request cap).
	Budget *overload.RetryBudget
}

func (cfg DialConfig) withDefaults() DialConfig {
	if cfg.ConnectTimeout <= 0 {
		cfg.ConnectTimeout = 5 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 5 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	return cfg
}

// Client is a minimal text-protocol client for the subset this server
// speaks. It is synchronous and not safe for concurrent use; open one per
// goroutine (the closed-loop shape RunLoad uses). Built through
// DialWithConfig it self-heals: transport failures close the connection,
// and the next attempt reconnects with backoff and replays per the retry
// policy.
type Client struct {
	cfg  DialConfig
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	buf  []byte
	rng  *rand.Rand

	retries    atomic.Int64
	reconnects atomic.Int64
}

// Dial connects to a cache server at addr with no deadlines and no retry
// policy: any transport error surfaces immediately.
func Dial(addr string) (*Client, error) {
	return DialWithConfig(DialConfig{Addr: addr})
}

// DialWithConfig connects under cfg. The initial dial honors the retry
// budget too: a client configured to survive a server restart also
// survives starting before its server is up.
func DialWithConfig(cfg DialConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	c := &Client{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	err := c.connect()
	for attempt := 1; err != nil && attempt <= cfg.MaxRetries; attempt++ {
		if !cfg.Budget.Withdraw() {
			break
		}
		c.retries.Add(1)
		c.backoff(attempt)
		err = c.connect()
	}
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Retries reports transport-failure retry attempts (including reconnect
// attempts that themselves failed); Reconnects reports connections
// re-established after the first.
func (c *Client) Retries() int64 { return c.retries.Load() }

// Reconnects reports how many times the client re-established its
// connection after a transport failure.
func (c *Client) Reconnects() int64 { return c.reconnects.Load() }

// connect dials and (re)binds the buffered reader and writer. The bufio
// pair is reused across reconnects, which also discards any half-read
// response bytes from the dead connection.
func (c *Client) connect() error {
	conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.ConnectTimeout)
	if err != nil {
		return err
	}
	c.conn = conn
	if c.br == nil {
		c.br = bufio.NewReaderSize(conn, 32<<10)
		c.bw = bufio.NewWriterSize(conn, 32<<10)
	} else {
		c.br.Reset(conn)
		c.bw.Reset(conn)
	}
	return nil
}

// reconnect replaces a broken connection.
func (c *Client) reconnect() error {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	if err := c.connect(); err != nil {
		return err
	}
	c.reconnects.Add(1)
	return nil
}

// markBroken closes a connection a transport error poisoned; the next
// attempt (or the caller's next op) reconnects.
func (c *Client) markBroken() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// backoff sleeps the jittered exponential pause before retry n (1-based).
func (c *Client) backoff(attempt int) {
	d := c.cfg.BackoffBase << (attempt - 1)
	if d <= 0 || d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	// Full jitter: uncorrelated clients reconnecting after one server
	// restart must not stampede in lockstep.
	time.Sleep(time.Duration(1 + c.rng.Int63n(int64(d))))
}

// IsTransportErr reports whether err came from the connection rather than
// the protocol — the class of errors a reconnect can heal. The cluster
// layer uses the same test to decide what counts as a node failure: a
// protocol error means the node answered (healthy, just unhelpful), while
// a transport error feeds its circuit breaker and failure detector.
func IsTransportErr(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// do runs op under the retry policy: up to maxAttempts tries, reconnecting
// (with backoff after the first) before each retry. Non-transport errors
// return immediately. Every retry must also win a token from the shared
// retry budget (when configured); a completed op — success or protocol
// error, either way the server answered — deposits back into it.
func (c *Client) do(maxAttempts int, op func() error) error {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var err error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			if !c.cfg.Budget.Withdraw() {
				return err
			}
			c.retries.Add(1)
			c.backoff(attempt)
		}
		if c.conn == nil {
			// Healing a connection a previous op broke: not a retry of this
			// op, so no backoff charge on attempt 0.
			if err = c.reconnect(); err != nil {
				continue
			}
		}
		if err = op(); err == nil {
			c.cfg.Budget.Deposit()
			return nil
		}
		if !IsTransportErr(err) {
			c.cfg.Budget.Deposit()
			return err
		}
		c.markBroken()
	}
	return err
}

// getAttempts is the idempotent-op budget; mutateAttempts allows one replay
// after a reconnect, and only when retrying is enabled at all.
func (c *Client) getAttempts() int { return 1 + c.cfg.MaxRetries }

func (c *Client) mutateAttempts() int {
	if c.cfg.MaxRetries == 0 {
		return 1
	}
	return 2
}

// flush arms the write deadline and pushes the buffered request out.
func (c *Client) flush() error {
	if c.cfg.WriteTimeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	}
	return c.bw.Flush()
}

// armRead arms the response deadline for one operation.
func (c *Client) armRead() {
	if c.cfg.ReadTimeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout))
	}
}

// Close sends quit, flushes it, and closes the connection, surfacing any
// flush or close error. It is safe on an already-broken client (one whose
// connection a failed op closed) and on repeated calls: both report nil.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	c.bw.WriteString("quit\r\n")
	flushErr := c.flush()
	closeErr := c.conn.Close()
	c.conn = nil
	return errors.Join(flushErr, closeErr)
}

// Get fetches one key, returning (value, found). The returned slice is
// owned by the caller.
func (c *Client) Get(key []byte) (value []byte, found bool, err error) {
	err = c.do(c.getAttempts(), func() error {
		var e error
		value, _, _, found, e = c.getOnce("get", key)
		return e
	})
	return value, found, err
}

// GetWith fetches one key along with its stored flags and cas token (it
// issues a gets). It exists for proxies: a router re-serving a backend's
// object must carry the backend's metadata through unchanged.
func (c *Client) GetWith(key []byte) (value []byte, flags uint32, cas uint64, found bool, err error) {
	err = c.do(c.getAttempts(), func() error {
		var e error
		value, flags, cas, found, e = c.getOnce("gets", key)
		return e
	})
	return value, flags, cas, found, err
}

// GetExp fetches one key via gete, returning the stored metadata plus the
// absolute expiry deadline in unix seconds (0 = never expires). Proxies
// replicating an object to another node read through it so the copy can
// carry the owner's real TTL instead of an immortal one.
func (c *Client) GetExp(key []byte) (value []byte, flags uint32, cas uint64, expireAt int64, found bool, err error) {
	err = c.do(c.getAttempts(), func() error {
		var e error
		value, flags, cas, expireAt, found, e = c.getExpOnce(key)
		return e
	})
	return value, flags, cas, expireAt, found, err
}

func (c *Client) getExpOnce(key []byte) ([]byte, uint32, uint64, int64, bool, error) {
	c.buf = append(c.buf[:0], "gete "...)
	c.buf = append(c.buf, key...)
	c.buf = append(c.buf, "\r\n"...)
	if _, err := c.bw.Write(c.buf); err != nil {
		return nil, 0, 0, 0, false, err
	}
	if err := c.flush(); err != nil {
		return nil, 0, 0, 0, false, err
	}
	c.armRead()
	var (
		value    []byte
		flags    uint32
		cas      uint64
		expireAt int64
	)
	found := false
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, 0, 0, 0, false, err
		}
		switch {
		case bytes.Equal(line, []byte("END")):
			return value, flags, cas, expireAt, found, nil
		case bytes.HasPrefix(line, []byte("VALUE ")):
			// "VALUE <key> <flags> <bytes> <cas> <exptime>" — the plain
			// header parser ignores tokens past cas, so read the fifth
			// token here.
			_, f, n, cs, err := parseValueHeader(line)
			if err != nil {
				return nil, 0, 0, 0, false, err
			}
			rest := line[len("VALUE "):]
			var tok []byte
			for i := 0; i < 4; i++ {
				_, rest = nextToken(rest)
			}
			tok, _ = nextToken(rest)
			exp, ok := parseInt(tok)
			if tok == nil || !ok {
				return nil, 0, 0, 0, false, fmt.Errorf("server: bad exptime in %q", line)
			}
			value = make([]byte, n+2)
			if _, err := io.ReadFull(c.br, value); err != nil {
				return nil, 0, 0, 0, false, err
			}
			value = value[:n]
			flags, cas, expireAt = f, cs, exp
			found = true
		case bytes.HasPrefix(line, busyPrefix):
			return nil, 0, 0, 0, false, ErrServerBusy
		default:
			return nil, 0, 0, 0, false, fmt.Errorf("server: unexpected gete response %q", line)
		}
	}
}

func (c *Client) getOnce(verb string, key []byte) ([]byte, uint32, uint64, bool, error) {
	c.buf = append(c.buf[:0], verb...)
	c.buf = append(c.buf, ' ')
	c.buf = append(c.buf, key...)
	c.buf = append(c.buf, "\r\n"...)
	if _, err := c.bw.Write(c.buf); err != nil {
		return nil, 0, 0, false, err
	}
	if err := c.flush(); err != nil {
		return nil, 0, 0, false, err
	}
	c.armRead()
	var (
		value []byte
		flags uint32
		cas   uint64
	)
	found := false
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, 0, 0, false, err
		}
		switch {
		case bytes.Equal(line, []byte("END")):
			return value, flags, cas, found, nil
		case bytes.HasPrefix(line, []byte("VALUE ")):
			_, f, n, cs, err := parseValueHeader(line)
			if err != nil {
				return nil, 0, 0, false, err
			}
			value = make([]byte, n+2)
			if _, err := io.ReadFull(c.br, value); err != nil {
				return nil, 0, 0, false, err
			}
			value = value[:n]
			flags, cas = f, cs
			found = true
		case bytes.HasPrefix(line, busyPrefix):
			return nil, 0, 0, false, ErrServerBusy
		default:
			return nil, 0, 0, false, fmt.Errorf("server: unexpected get response %q", line)
		}
	}
}

// MultiValue is one key's result in a GetMulti batch.
type MultiValue struct {
	// Value is the stored bytes, owned by the caller; nil on a miss.
	Value []byte
	Flags uint32
	CAS   uint64
	Found bool
}

// GetMulti fetches keys as pipelined multi-key gets (one request per
// MaxKeysPerGet chunk), returning per-key results in request order. It is
// the fan-out unit the cluster client batches per node: many keys, one
// round trip. Retries follow the idempotent-get budget per chunk.
func (c *Client) GetMulti(keys [][]byte) ([]MultiValue, error) {
	out := make([]MultiValue, len(keys))
	for start := 0; start < len(keys); start += MaxKeysPerGet {
		end := min(start+MaxKeysPerGet, len(keys))
		chunk, res := keys[start:end], out[start:end]
		err := c.do(c.getAttempts(), func() error { return c.getMultiOnce(chunk, res) })
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (c *Client) getMultiOnce(keys [][]byte, out []MultiValue) error {
	// A retried chunk starts over; clear anything a broken attempt filled.
	for i := range out {
		out[i] = MultiValue{}
	}
	c.buf = append(c.buf[:0], "gets"...)
	for _, k := range keys {
		c.buf = append(c.buf, ' ')
		c.buf = append(c.buf, k...)
	}
	c.buf = append(c.buf, "\r\n"...)
	if _, err := c.bw.Write(c.buf); err != nil {
		return err
	}
	if err := c.flush(); err != nil {
		return err
	}
	c.armRead()
	idx := make(map[string]int, len(keys))
	for i, k := range keys {
		idx[string(k)] = i
	}
	for {
		line, err := c.readLine()
		if err != nil {
			return err
		}
		switch {
		case bytes.Equal(line, []byte("END")):
			return nil
		case bytes.HasPrefix(line, []byte("VALUE ")):
			key, flags, n, cas, err := parseValueHeader(line)
			if err != nil {
				return err
			}
			value := make([]byte, n+2)
			if _, err := io.ReadFull(c.br, value); err != nil {
				return err
			}
			i, ok := idx[string(key)]
			if !ok {
				return fmt.Errorf("server: unrequested key %q in multi-get response", key)
			}
			out[i] = MultiValue{Value: value[:n], Flags: flags, CAS: cas, Found: true}
		case bytes.HasPrefix(line, busyPrefix):
			return ErrServerBusy
		default:
			return fmt.Errorf("server: unexpected get response %q", line)
		}
	}
}

// Set stores value under key with no expiry.
func (c *Client) Set(key []byte, flags uint32, value []byte) error {
	return c.SetExp(key, flags, 0, value)
}

// SetExp stores value under key with a wire exptime, per the memcached
// contract: 0 never expires, up to 30 days is a relative TTL in seconds,
// larger values are absolute unix timestamps.
func (c *Client) SetExp(key []byte, flags uint32, exptime int64, value []byte) error {
	return c.do(c.mutateAttempts(), func() error { return c.setOnce(key, flags, exptime, value) })
}

func (c *Client) setOnce(key []byte, flags uint32, exptime int64, value []byte) error {
	c.buf = append(c.buf[:0], "set "...)
	c.buf = append(c.buf, key...)
	c.buf = append(c.buf, ' ')
	c.buf = strconv.AppendUint(c.buf, uint64(flags), 10)
	c.buf = append(c.buf, ' ')
	c.buf = strconv.AppendInt(c.buf, exptime, 10)
	c.buf = append(c.buf, ' ')
	c.buf = strconv.AppendInt(c.buf, int64(len(value)), 10)
	c.buf = append(c.buf, "\r\n"...)
	if _, err := c.bw.Write(c.buf); err != nil {
		return err
	}
	if _, err := c.bw.Write(value); err != nil {
		return err
	}
	if _, err := c.bw.WriteString("\r\n"); err != nil {
		return err
	}
	if err := c.flush(); err != nil {
		return err
	}
	c.armRead()
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if !bytes.Equal(line, []byte("STORED")) {
		if bytes.HasPrefix(line, busyPrefix) {
			return ErrServerBusy
		}
		return fmt.Errorf("server: set: %q", line)
	}
	return nil
}

// Delete removes key, reporting whether the server had it.
func (c *Client) Delete(key []byte) (found bool, err error) {
	err = c.do(c.mutateAttempts(), func() error {
		var e error
		found, e = c.deleteOnce(key)
		return e
	})
	return found, err
}

func (c *Client) deleteOnce(key []byte) (bool, error) {
	c.buf = append(c.buf[:0], "delete "...)
	c.buf = append(c.buf, key...)
	c.buf = append(c.buf, "\r\n"...)
	if _, err := c.bw.Write(c.buf); err != nil {
		return false, err
	}
	if err := c.flush(); err != nil {
		return false, err
	}
	c.armRead()
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	switch {
	case bytes.Equal(line, []byte("DELETED")):
		return true, nil
	case bytes.Equal(line, []byte("NOT_FOUND")):
		return false, nil
	case bytes.HasPrefix(line, busyPrefix):
		return false, ErrServerBusy
	}
	return false, fmt.Errorf("server: delete: %q", line)
}

// Touch refreshes key's TTL without transferring its value, reporting
// whether the server had a live entry. exptime follows the memcached wire
// contract (0 never expires, ≤30 days relative, else absolute unix time).
// Touch follows the mutation retry policy: one replay after a reconnect.
func (c *Client) Touch(key []byte, exptime int64) (found bool, err error) {
	err = c.do(c.mutateAttempts(), func() error {
		var e error
		found, e = c.touchOnce(key, exptime)
		return e
	})
	return found, err
}

func (c *Client) touchOnce(key []byte, exptime int64) (bool, error) {
	c.buf = append(c.buf[:0], "touch "...)
	c.buf = append(c.buf, key...)
	c.buf = append(c.buf, ' ')
	c.buf = strconv.AppendInt(c.buf, exptime, 10)
	c.buf = append(c.buf, "\r\n"...)
	if _, err := c.bw.Write(c.buf); err != nil {
		return false, err
	}
	if err := c.flush(); err != nil {
		return false, err
	}
	c.armRead()
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	switch {
	case bytes.Equal(line, []byte("TOUCHED")):
		return true, nil
	case bytes.Equal(line, []byte("NOT_FOUND")):
		return false, nil
	case bytes.HasPrefix(line, busyPrefix):
		return false, ErrServerBusy
	}
	return false, fmt.Errorf("server: touch: %q", line)
}

// Version asks the server to identify itself. It is the health probe the
// cluster failure detector sends: no key access, a fixed-size answer, and
// never retried — a probe exists to measure the transport, and a retry
// loop would measure the retry loop instead.
func (c *Client) Version() (string, error) {
	var v string
	err := c.do(1, func() error {
		if _, err := c.bw.WriteString("version\r\n"); err != nil {
			return err
		}
		if err := c.flush(); err != nil {
			return err
		}
		c.armRead()
		line, err := c.readLine()
		if err != nil {
			return err
		}
		if !bytes.HasPrefix(line, []byte("VERSION ")) {
			return fmt.Errorf("server: unexpected version response %q", line)
		}
		v = string(line[len("VERSION "):])
		return nil
	})
	return v, err
}

// Stats fetches the server's stats as a name→value map. Stats is read-only
// but not retried: it is a diagnostic, and a heal here would mask the very
// failure being diagnosed.
func (c *Client) Stats() (stats map[string]string, err error) {
	return c.StatsArg("")
}

// StatsArg fetches a stats subcommand ("mrc" → `stats mrc`); an empty arg
// is the plain stats. A CLIENT_ERROR answer (older server, unknown
// subcommand) is returned as an error with an empty map.
func (c *Client) StatsArg(arg string) (stats map[string]string, err error) {
	err = c.do(1, func() error {
		var e error
		stats, e = c.statsOnce(arg)
		return e
	})
	return stats, err
}

func (c *Client) statsOnce(arg string) (map[string]string, error) {
	cmd := "stats\r\n"
	if arg != "" {
		cmd = "stats " + arg + "\r\n"
	}
	if _, err := c.bw.WriteString(cmd); err != nil {
		return nil, err
	}
	if err := c.flush(); err != nil {
		return nil, err
	}
	c.armRead()
	out := make(map[string]string)
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if bytes.Equal(line, []byte("END")) {
			return out, nil
		}
		fields := bytes.SplitN(line, []byte(" "), 3)
		if len(fields) != 3 || !bytes.Equal(fields[0], []byte("STAT")) {
			return nil, fmt.Errorf("server: unexpected stats line %q", line)
		}
		out[string(fields[1])] = string(fields[2])
	}
}

// StatInt reads one numeric stat from a Stats map.
func StatInt(stats map[string]string, name string) (int64, error) {
	v, ok := stats[name]
	if !ok {
		return 0, fmt.Errorf("server: stat %q missing", name)
	}
	return strconv.ParseInt(v, 10, 64)
}

// StatFloat reads one float stat from a Stats map (the mrc subcommand's
// rates and ratios).
func StatFloat(stats map[string]string, name string) (float64, error) {
	v, ok := stats[name]
	if !ok {
		return 0, fmt.Errorf("server: stat %q missing", name)
	}
	return strconv.ParseFloat(v, 64)
}

func (c *Client) readLine() ([]byte, error) {
	line, err := c.br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return line, nil
}

// parseValueHeader parses "VALUE <key> <flags> <bytes> [<cas>]". It
// tolerates arbitrary junk (a resilient client sees truncated and
// corrupted streams), answering with an error instead of panicking.
func parseValueHeader(line []byte) (key []byte, flags uint32, n int, cas uint64, err error) {
	if !bytes.HasPrefix(line, []byte("VALUE ")) {
		return nil, 0, 0, 0, fmt.Errorf("server: bad VALUE header %q", line)
	}
	rest := line[len("VALUE "):]
	key, rest = nextToken(rest)
	flagsTok, rest := nextToken(rest)
	bytesTok, rest := nextToken(rest)
	casTok, _ := nextToken(rest)
	f, ok1 := parseUint(flagsTok, 1<<32-1)
	b, ok2 := parseUint(bytesTok, 1<<31)
	if key == nil || !ok1 || !ok2 {
		return nil, 0, 0, 0, fmt.Errorf("server: bad VALUE header %q", line)
	}
	if casTok != nil {
		c, ok := parseUint(casTok, 1<<63)
		if !ok {
			return nil, 0, 0, 0, fmt.Errorf("server: bad cas in %q", line)
		}
		cas = c
	}
	return key, uint32(f), int(b), cas, nil
}

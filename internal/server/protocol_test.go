package server

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func parseOne(t *testing.T, input string) (*Request, error) {
	t.Helper()
	br := bufio.NewReader(strings.NewReader(input))
	var req Request
	err := ParseRequest(br, &req, 0)
	return &req, err
}

func TestParseRequestTable(t *testing.T) {
	longKey := strings.Repeat("k", MaxKeyLen)
	tooLongKey := strings.Repeat("k", MaxKeyLen+1)
	cases := []struct {
		name  string
		input string
		check func(t *testing.T, req *Request, err error)
	}{
		{"get one key", "get foo\r\n", func(t *testing.T, req *Request, err error) {
			if err != nil || req.Op != OpGet || len(req.Keys) != 1 || string(req.Keys[0]) != "foo" {
				t.Fatalf("req=%+v err=%v", req, err)
			}
		}},
		{"get multi key", "get a b c\r\n", func(t *testing.T, req *Request, err error) {
			if err != nil || req.Op != OpGet || len(req.Keys) != 3 || string(req.Keys[2]) != "c" {
				t.Fatalf("req=%+v err=%v", req, err)
			}
		}},
		{"gets has cas", "gets a b\r\n", func(t *testing.T, req *Request, err error) {
			if err != nil || req.Op != OpGets || len(req.Keys) != 2 {
				t.Fatalf("req=%+v err=%v", req, err)
			}
		}},
		{"get max-length key", "get " + longKey + "\r\n", func(t *testing.T, req *Request, err error) {
			if err != nil || len(req.Keys[0]) != MaxKeyLen {
				t.Fatalf("err=%v", err)
			}
		}},
		{"get oversized key", "get " + tooLongKey + "\r\n", func(t *testing.T, req *Request, err error) {
			var ce ClientError
			if !errors.As(err, &ce) {
				t.Fatalf("want ClientError, got %v", err)
			}
		}},
		{"get no keys", "get\r\n", func(t *testing.T, req *Request, err error) {
			var ce ClientError
			if !errors.As(err, &ce) {
				t.Fatalf("want ClientError, got %v", err)
			}
		}},
		{"get too many keys", "get " + strings.Repeat("k ", MaxKeysPerGet+1) + "\r\n",
			func(t *testing.T, req *Request, err error) {
				var ce ClientError
				if !errors.As(err, &ce) {
					t.Fatalf("want ClientError, got %v", err)
				}
			}},
		{"get key with control byte", "get a\x01b\r\n", func(t *testing.T, req *Request, err error) {
			var ce ClientError
			if !errors.As(err, &ce) {
				t.Fatalf("want ClientError, got %v", err)
			}
		}},
		{"bare LF line accepted", "get foo\n", func(t *testing.T, req *Request, err error) {
			if err != nil || string(req.Keys[0]) != "foo" {
				t.Fatalf("req=%+v err=%v", req, err)
			}
		}},
		{"set", "set k 7 0 5\r\nhello\r\n", func(t *testing.T, req *Request, err error) {
			if err != nil || req.Op != OpSet || string(req.Keys[0]) != "k" ||
				req.Flags != 7 || string(req.Value) != "hello" || req.NoReply {
				t.Fatalf("req=%+v err=%v", req, err)
			}
		}},
		{"set noreply", "set k 0 0 2 noreply\r\nhi\r\n", func(t *testing.T, req *Request, err error) {
			if err != nil || !req.NoReply || string(req.Value) != "hi" {
				t.Fatalf("req=%+v err=%v", req, err)
			}
		}},
		{"set empty value", "set k 0 0 0\r\n\r\n", func(t *testing.T, req *Request, err error) {
			if err != nil || len(req.Value) != 0 {
				t.Fatalf("req=%+v err=%v", req, err)
			}
		}},
		{"set negative exptime", "set k 0 -1 2\r\nhi\r\n", func(t *testing.T, req *Request, err error) {
			if err != nil || req.Exptime != -1 {
				t.Fatalf("req=%+v err=%v", req, err)
			}
		}},
		{"set value embedding CRLF", "set k 0 0 4\r\na\r\nb\r\n", func(t *testing.T, req *Request, err error) {
			if err != nil || string(req.Value) != "a\r\nb" {
				t.Fatalf("req=%+v err=%v", req, err)
			}
		}},
		{"set bad flags", "set k x 0 2\r\nhi\r\n", func(t *testing.T, req *Request, err error) {
			var ce ClientError
			if !errors.As(err, &ce) {
				t.Fatalf("want ClientError, got %v", err)
			}
		}},
		{"set missing bytes", "set k 0 0\r\n", func(t *testing.T, req *Request, err error) {
			var ce ClientError
			if !errors.As(err, &ce) {
				t.Fatalf("want ClientError, got %v", err)
			}
		}},
		{"set bad data chunk terminator", "set k 0 0 2\r\nhixx", func(t *testing.T, req *Request, err error) {
			var ce ClientError
			if !errors.As(err, &ce) {
				t.Fatalf("want ClientError, got %v", err)
			}
		}},
		{"set oversized value", "set k 0 0 99999999999\r\n", func(t *testing.T, req *Request, err error) {
			if !errors.Is(err, ErrValueTooLarge) {
				t.Fatalf("want ErrValueTooLarge, got %v", err)
			}
		}},
		{"set trailing junk", "set k 0 0 2 nope\r\nhi\r\n", func(t *testing.T, req *Request, err error) {
			var ce ClientError
			if !errors.As(err, &ce) {
				t.Fatalf("want ClientError, got %v", err)
			}
		}},
		{"delete", "delete k\r\n", func(t *testing.T, req *Request, err error) {
			if err != nil || req.Op != OpDelete || string(req.Keys[0]) != "k" {
				t.Fatalf("req=%+v err=%v", req, err)
			}
		}},
		{"delete noreply", "delete k noreply\r\n", func(t *testing.T, req *Request, err error) {
			if err != nil || !req.NoReply {
				t.Fatalf("req=%+v err=%v", req, err)
			}
		}},
		{"touch", "touch k 3600\r\n", func(t *testing.T, req *Request, err error) {
			if err != nil || req.Op != OpTouch || string(req.Keys[0]) != "k" ||
				req.Exptime != 3600 || req.NoReply {
				t.Fatalf("req=%+v err=%v", req, err)
			}
		}},
		{"touch noreply", "touch k 60 noreply\r\n", func(t *testing.T, req *Request, err error) {
			if err != nil || req.Op != OpTouch || !req.NoReply {
				t.Fatalf("req=%+v err=%v", req, err)
			}
		}},
		{"touch negative exptime", "touch k -1\r\n", func(t *testing.T, req *Request, err error) {
			if err != nil || req.Exptime != -1 {
				t.Fatalf("req=%+v err=%v", req, err)
			}
		}},
		{"touch missing exptime", "touch k\r\n", func(t *testing.T, req *Request, err error) {
			var ce ClientError
			if !errors.As(err, &ce) {
				t.Fatalf("want ClientError, got %v", err)
			}
		}},
		{"touch bad exptime", "touch k abc\r\n", func(t *testing.T, req *Request, err error) {
			var ce ClientError
			if !errors.As(err, &ce) {
				t.Fatalf("want ClientError, got %v", err)
			}
		}},
		{"touch trailing junk", "touch k 60 nope\r\n", func(t *testing.T, req *Request, err error) {
			var ce ClientError
			if !errors.As(err, &ce) {
				t.Fatalf("want ClientError, got %v", err)
			}
		}},
		{"gete", "gete k\r\n", func(t *testing.T, req *Request, err error) {
			if err != nil || req.Op != OpGete || len(req.Keys) != 1 || string(req.Keys[0]) != "k" {
				t.Fatalf("req=%+v err=%v", req, err)
			}
		}},
		{"gete wants exactly one key", "gete a b\r\n", func(t *testing.T, req *Request, err error) {
			var ce ClientError
			if !errors.As(err, &ce) {
				t.Fatalf("want ClientError, got %v", err)
			}
		}},
		{"gete no keys", "gete\r\n", func(t *testing.T, req *Request, err error) {
			var ce ClientError
			if !errors.As(err, &ce) {
				t.Fatalf("want ClientError, got %v", err)
			}
		}},
		{"stats", "stats\r\n", func(t *testing.T, req *Request, err error) {
			if err != nil || req.Op != OpStats {
				t.Fatalf("req=%+v err=%v", req, err)
			}
		}},
		{"quit", "quit\r\n", func(t *testing.T, req *Request, err error) {
			if err != nil || req.Op != OpQuit {
				t.Fatalf("req=%+v err=%v", req, err)
			}
		}},
		{"noop", "noop\r\n", func(t *testing.T, req *Request, err error) {
			if err != nil || req.Op != OpNoop || len(req.Keys) != 0 {
				t.Fatalf("req=%+v err=%v", req, err)
			}
		}},
		{"version", "version\r\n", func(t *testing.T, req *Request, err error) {
			if err != nil || req.Op != OpVersion || len(req.Keys) != 0 {
				t.Fatalf("req=%+v err=%v", req, err)
			}
		}},
		{"noop is not a get", "noopx\r\n", func(t *testing.T, req *Request, err error) {
			if !errors.Is(err, ErrUnknownCommand) {
				t.Fatalf("want ErrUnknownCommand, got %v", err)
			}
		}},
		{"unknown command", "incr k 1\r\n", func(t *testing.T, req *Request, err error) {
			if !errors.Is(err, ErrUnknownCommand) {
				t.Fatalf("want ErrUnknownCommand, got %v", err)
			}
		}},
		{"empty line", "\r\n", func(t *testing.T, req *Request, err error) {
			if !errors.Is(err, ErrUnknownCommand) {
				t.Fatalf("want ErrUnknownCommand, got %v", err)
			}
		}},
		{"eof", "", func(t *testing.T, req *Request, err error) {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("want EOF, got %v", err)
			}
		}},
		{"truncated set body", "set k 0 0 10\r\nhi", func(t *testing.T, req *Request, err error) {
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("want ErrUnexpectedEOF, got %v", err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := parseOne(t, tc.input)
			tc.check(t, req, err)
		})
	}
}

// A line longer than the reader's buffer is drained as one recoverable
// client error, leaving the following request parseable.
func TestParseRequestOverlongLine(t *testing.T) {
	input := "get " + strings.Repeat("x", 9000) + "\r\nget ok\r\n"
	br := bufio.NewReaderSize(strings.NewReader(input), 4096)
	var req Request
	err := ParseRequest(br, &req, 0)
	var ce ClientError
	if !errors.As(err, &ce) {
		t.Fatalf("want ClientError for overlong line, got %v", err)
	}
	if err := ParseRequest(br, &req, 0); err != nil {
		t.Fatalf("stream out of sync after overlong line: %v", err)
	}
	if string(req.Keys[0]) != "ok" {
		t.Fatalf("next request misparsed: %q", req.Keys[0])
	}
}

// A pipelined burst parses back-to-back from one buffer, and one Request
// struct is safely reused across all of them.
func TestParseRequestPipelinedBurst(t *testing.T) {
	var input bytes.Buffer
	for i := 0; i < 100; i++ {
		input.WriteString("set k 0 0 3\r\nabc\r\nget k a b\r\ndelete k\r\n")
	}
	br := bufio.NewReader(&input)
	var req Request
	for i := 0; i < 100; i++ {
		for _, want := range []Op{OpSet, OpGet, OpDelete} {
			if err := ParseRequest(br, &req, 0); err != nil {
				t.Fatalf("burst %d: %v", i, err)
			}
			if req.Op != want {
				t.Fatalf("burst %d: op %v, want %v", i, req.Op, want)
			}
		}
		if string(req.Keys[0]) != "k" {
			t.Fatalf("key reuse corrupted: %q", req.Keys[0])
		}
	}
	if err := ParseRequest(br, &req, 0); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF after burst, got %v", err)
	}
}

// Requests arriving one byte at a time (worst-case partial reads) must
// parse identically to a single write.
func TestParseRequestPartialReads(t *testing.T) {
	input := "set key1 3 0 5\r\nhello\r\nget key1 key2\r\n"
	br := bufio.NewReader(iotest(input))
	var req Request
	if err := ParseRequest(br, &req, 0); err != nil {
		t.Fatal(err)
	}
	if req.Op != OpSet || string(req.Value) != "hello" || req.Flags != 3 {
		t.Fatalf("set misparsed: %+v", req)
	}
	if err := ParseRequest(br, &req, 0); err != nil {
		t.Fatal(err)
	}
	if req.Op != OpGet || len(req.Keys) != 2 || string(req.Keys[1]) != "key2" {
		t.Fatalf("get misparsed: %+v", req)
	}
}

// iotest returns a reader yielding one byte per Read call.
func iotest(s string) io.Reader { return &oneByteReader{data: []byte(s)} }

type oneByteReader struct {
	data []byte
	pos  int
}

func (r *oneByteReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	p[0] = r.data[r.pos]
	r.pos++
	return 1, nil
}

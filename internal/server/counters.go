package server

import (
	"expvar"
	"sync/atomic"
)

// Counters are the server's operation counters. Everything is a plain
// atomic so the hit path never takes a lock for accounting; stats and
// expvar reads are snapshots, not transactions.
type Counters struct {
	Gets       atomic.Int64 // per key requested, so GetHits+GetMisses == Gets
	GetHits    atomic.Int64
	GetMisses  atomic.Int64
	Sets       atomic.Int64
	Deletes    atomic.Int64
	DeleteHits atomic.Int64
	Touches    atomic.Int64
	TouchHits  atomic.Int64

	BadCommands atomic.Int64

	// BytesRead counts value payload bytes received in set commands;
	// BytesWritten counts value payload bytes sent in get responses.
	// Protocol framing is excluded on both sides.
	BytesRead    atomic.Int64
	BytesWritten atomic.Int64

	CurrConns     atomic.Int64
	TotalConns    atomic.Int64
	RejectedConns atomic.Int64

	// Resilience counters: transient accept errors survived with backoff,
	// slow readers evicted at the write deadline, and handler panics
	// isolated to their connection. In a healthy deployment all three stay
	// flat; any climbing is an operational signal, not just a statistic.
	AcceptRetries   atomic.Int64
	SlowConnsClosed atomic.Int64
	Panics          atomic.Int64

	// Batched data-plane counters. Flushes counts response deliveries to
	// the socket (writev calls in batched mode, bufio flushes otherwise);
	// Batches/BatchedReqs count merged get dispatches and the pipelined
	// requests they covered, so BatchedReqs/Flushes is the syscall
	// amortization ratio and BatchedReqs/Batches the merge depth.
	Flushes     atomic.Int64
	Batches     atomic.Int64
	BatchedReqs atomic.Int64

	// Shard-partition locality: keys served by the partition that owns
	// their data shard vs keys that crossed partitions (and may contend on
	// another core's shard locks). Both stay 0 when the store exposes no
	// topology or a single listener serves.
	LocalOps     atomic.Int64
	CrossCoreOps atomic.Int64
}

// ExpvarMap exposes the server's counters plus the store gauges as an
// expvar.Map of live Funcs. The caller decides whether and under what name
// to expvar.Publish it (publishing is global and can only happen once per
// name per process, so the server never does it itself).
func (s *Server) ExpvarMap() *expvar.Map {
	m := new(expvar.Map)
	gauge := func(name string, f func() int64) {
		m.Set(name, expvar.Func(func() any { return f() }))
	}
	gauge("cmd_get", s.counters.Gets.Load)
	gauge("get_hits", s.counters.GetHits.Load)
	gauge("get_misses", s.counters.GetMisses.Load)
	gauge("cmd_set", s.counters.Sets.Load)
	gauge("cmd_delete", s.counters.Deletes.Load)
	gauge("delete_hits", s.counters.DeleteHits.Load)
	gauge("cmd_touch", s.counters.Touches.Load)
	gauge("touch_hits", s.counters.TouchHits.Load)
	gauge("bad_commands", s.counters.BadCommands.Load)
	gauge("bytes_read", s.counters.BytesRead.Load)
	gauge("bytes_written", s.counters.BytesWritten.Load)
	gauge("curr_connections", s.counters.CurrConns.Load)
	gauge("total_connections", s.counters.TotalConns.Load)
	gauge("rejected_connections", s.counters.RejectedConns.Load)
	gauge("accept_retries", s.counters.AcceptRetries.Load)
	gauge("conns_slow_closed", s.counters.SlowConnsClosed.Load)
	gauge("panics", s.counters.Panics.Load)
	gauge("flushes", s.counters.Flushes.Load)
	gauge("batches", s.counters.Batches.Load)
	gauge("batched_requests", s.counters.BatchedReqs.Load)
	gauge("local_ops", s.counters.LocalOps.Load)
	gauge("cross_core_ops", s.counters.CrossCoreOps.Load)
	gauge("curr_items", s.cfg.Store.Items)
	gauge("curr_bytes", s.cfg.Store.Bytes)
	gauge("evictions", func() int64 { return s.cfg.Store.Stats().Evictions })
	gauge("capacity_items", func() int64 { return int64(s.cfg.Store.Capacity()) })
	m.Set("cache", expvar.Func(func() any { return s.cfg.Store.Name() }))
	return m
}

//go:build linux

package server

import (
	"runtime"
	"syscall"
	"unsafe"
)

// pinToCore binds the calling OS thread (the caller must hold
// runtime.LockOSThread) to one CPU, chosen as part modulo the machine's
// CPU count so partitions wrap on small machines. Best-effort: a kernel
// that refuses the affinity call (containers with restricted cpusets)
// leaves the thread floating, which is the unpinned behavior anyway.
func pinToCore(part int) {
	ncpu := runtime.NumCPU()
	if ncpu <= 1 {
		return
	}
	cpu := part % ncpu
	// A 1024-bit CPU mask, the kernel's historical CPU_SETSIZE.
	var mask [1024 / 64]uint64
	mask[(cpu/64)%len(mask)] = 1 << (cpu % 64)
	// Thread id 0 = calling thread. RawSyscall: no scheduler interaction
	// needed for a call this short.
	syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY, 0,
		unsafe.Sizeof(mask), uintptr(unsafe.Pointer(&mask)))
}

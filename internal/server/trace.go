package server

import (
	"time"

	"repro/internal/obs"
)

// Span outcome codes (obs.Span.Outcome). The obs package stores them
// opaquely; the server owns both the assignment (dispatch) and the
// rendering (outcomeName).
const (
	OutcomeNone uint8 = iota
	OutcomeHit
	OutcomeMiss
	OutcomeStored
	OutcomeDeleted
	OutcomeNotFound
	OutcomeError
)

var outcomeNames = [...]string{
	OutcomeNone:     "none",
	OutcomeHit:      "hit",
	OutcomeMiss:     "miss",
	OutcomeStored:   "stored",
	OutcomeDeleted:  "deleted",
	OutcomeNotFound: "not-found",
	OutcomeError:    "error",
}

func outcomeName(o uint8) string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "unknown"
}

func opName(op uint8) string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return "unknown"
}

const (
	// spanBufferSize is the retained-span window; at a typical 1-in-1024
	// sample it covers the last ~4M requests.
	spanBufferSize = 4096
	// pendingSpanCap bounds the spans one connection holds while waiting
	// for their batch flush. An overflowing span is recorded immediately
	// with FlushNs 0 rather than blocking or reallocating.
	pendingSpanCap = 64
)

// connTracer samples one connection's requests into the server's span
// buffer. Spans are held pending until the write buffer flushes so they can
// carry the flush duration of the batch that delivered their response; a
// zero-valued tracer (nil buf) is disabled and every method is a single
// branch, keeping the untraced request loop allocation- and syscall-free.
type connTracer struct {
	buf     *obs.SpanBuffer
	sample  uint64 // record every sample-th request; 0 = sampling off
	slowNs  int64  // always record past this parse+dispatch time; 0 = off
	seen    uint64
	pending []obs.Span
}

func (s *Server) newConnTracer() connTracer {
	return connTracer{
		buf:    s.spans,
		sample: uint64(s.cfg.TraceSample),
		slowNs: s.cfg.SlowRequest.Nanoseconds(),
	}
}

func (t *connTracer) enabled() bool { return t.buf != nil }

// begin stamps the request's parse start. Zero when tracing is off, so the
// disabled path never reads the clock.
func (t *connTracer) begin() time.Time {
	if t.buf == nil {
		return time.Time{}
	}
	return time.Now()
}

// observe decides whether the request that just dispatched is kept — every
// sample-th request on this connection, plus everything over the slow
// threshold — and if so parks its span until the batch flush stamps it.
func (t *connTracer) observe(req *Request, start, dispatched, done time.Time) {
	if t.buf == nil {
		return
	}
	t.seen++
	parseNs := dispatched.Sub(start).Nanoseconds()
	dispatchNs := done.Sub(dispatched).Nanoseconds()
	slow := t.slowNs > 0 && parseNs+dispatchNs >= t.slowNs
	if !slow && (t.sample == 0 || t.seen%t.sample != 0) {
		return
	}
	var key uint64
	if len(req.Digests) > 0 {
		key = req.Digests[0]
	}
	sp := obs.Span{
		Start:      start.UnixNano(),
		Key:        key,
		Op:         uint8(req.Op),
		Outcome:    req.outcome,
		Slow:       slow,
		ParseNs:    parseNs,
		DispatchNs: dispatchNs,
	}
	if t.pending == nil {
		t.pending = make([]obs.Span, 0, pendingSpanCap)
	}
	if len(t.pending) == cap(t.pending) {
		t.buf.Record(sp) // pending set full: give up on the flush stamp
		return
	}
	t.pending = append(t.pending, sp)
}

// preFlush stamps the flush start — only when spans are waiting for it, so
// the common no-pending flush skips the clock reads.
func (t *connTracer) preFlush() time.Time {
	if t.buf == nil || len(t.pending) == 0 {
		return time.Time{}
	}
	return time.Now()
}

// flushed records every pending span with the flush duration of the batch
// write that carried its response. Pipelined requests answered by one flush
// share the stamp — that sharing is the point: the spans show both the
// per-request service time and the batched delivery cost.
func (t *connTracer) flushed(flushStart time.Time) {
	if t.buf == nil || len(t.pending) == 0 {
		return
	}
	flushNs := time.Since(flushStart).Nanoseconds()
	for i := range t.pending {
		t.pending[i].FlushNs = flushNs
		t.buf.Record(t.pending[i])
	}
	t.pending = t.pending[:0]
}

package obs

import "sync/atomic"

// SampleHash is the canonical spatial-sampling hash (a murmur3 finalizer)
// shared by the offline SHARDS curve builder in internal/mrc and the live
// sampler below. Sampling decisions must agree everywhere — a key is either
// in the sample set or it is not, across processes and across restarts — so
// every consumer calls this one function.
func SampleHash(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	return x ^ (x >> 33)
}

// sampleSlot is one staging-ring slot: a key digest published under a
// per-slot sequence word, the same seqlock protocol eventSlot uses.
type sampleSlot struct {
	seq atomic.Uint64
	key atomic.Uint64
}

// sampleRing is one lock-free staging ring. Writers (request goroutines)
// claim slots with an atomic add and publish with the seqlock; the single
// consumer (the mrc.Online drain loop) tracks its own cursor and counts
// slots it lost to overwrite as drops.
type sampleRing struct {
	pos   atomic.Uint64
	_     [56]byte // keep hot write cursors off each other's cache lines
	slots []sampleSlot

	// Consumer-side state. next is only touched by the drain goroutine;
	// dropped is atomic because metrics scrapes read it concurrently.
	next    uint64
	dropped atomic.Int64
}

func (r *sampleRing) offer(id uint64) {
	n := r.pos.Add(1) - 1
	s := &r.slots[n&uint64(len(r.slots)-1)]
	s.seq.Store(0) // mark in-progress; the consumer skips torn slots
	s.key.Store(id)
	s.seq.Store(n + 1) // publish
}

// KeySampler stages spatially-hash-sampled key digests from the serving hot
// path for a background consumer. Offer is the producer side: one hash, one
// compare, and for the sampled fraction one atomic add plus three plain
// atomic stores — no locks, no allocations, so the served hit path stays
// 0 allocs/op with sampling enabled. A nil *KeySampler offers nothing, the
// same nil-receiver discipline as *Recorder.
//
// Rings are selected by a second, independent mix of the digest, so one key
// always lands in one ring: per-key arrival order is preserved, which is
// what a reuse-distance estimator needs. Ordering *across* keys is only
// preserved within a ring; the estimator tolerates cross-key reorder
// bounded by one drain interval.
type KeySampler struct {
	threshold uint64
	rate      float64
	mask      uint64
	rings     []sampleRing
}

// NewKeySampler returns a sampler admitting keys whose SampleHash falls
// under rate (clamped to (0, 1]), staged across rings ring buffers of
// perRing slots each (rounded up to powers of two; minimums 1 and 64).
func NewKeySampler(rate float64, rings, perRing int) *KeySampler {
	if rate <= 0 {
		rate = 1.0 / (1 << 32)
	}
	if rate > 1 {
		rate = 1
	}
	if rings < 1 {
		rings = 1
	}
	if perRing < 64 {
		perRing = 64
	}
	rings = ceilPow2(rings)
	perRing = ceilPow2(perRing)
	s := &KeySampler{
		threshold: uint64(rate * (1 << 32)),
		rate:      rate,
		mask:      uint64(rings - 1),
		rings:     make([]sampleRing, rings),
	}
	for i := range s.rings {
		s.rings[i].slots = make([]sampleSlot, perRing)
	}
	return s
}

// Rate returns the configured sampling rate.
func (s *KeySampler) Rate() float64 {
	if s == nil {
		return 0
	}
	return s.rate
}

// Offer stages the key digest if it falls in the sample set. Unsampled keys
// cost one hash and one compare; offering on a nil sampler is a no-op.
func (s *KeySampler) Offer(id uint64) {
	if s == nil {
		return
	}
	if SampleHash(id)&0xffffffff >= s.threshold {
		return
	}
	s.rings[mix(id)&s.mask].offer(id)
}

// Offered returns the number of keys ever staged (sampled offers, including
// any later overwritten before a drain).
func (s *KeySampler) Offered() int64 {
	if s == nil {
		return 0
	}
	var total int64
	for i := range s.rings {
		total += int64(s.rings[i].pos.Load())
	}
	return total
}

// Dropped returns how many staged keys were overwritten (or torn) before
// the consumer drained them. It is monotonic.
func (s *KeySampler) Dropped() int64 {
	if s == nil {
		return 0
	}
	var dropped int64
	for i := range s.rings {
		dropped += s.rings[i].dropped.Load()
	}
	return dropped
}

// Drain appends every stable staged key to buf and returns it, advancing
// the consumer cursor. Drain is single-consumer: exactly one goroutine may
// call it. Writers are never blocked; slots overwritten since the last
// drain (the consumer was lapped) are counted as dropped, as are slots torn
// by an in-flight writer.
func (s *KeySampler) Drain(buf []uint64) []uint64 {
	if s == nil {
		return buf
	}
	for i := range s.rings {
		r := &s.rings[i]
		pos := r.pos.Load()
		start := r.next
		if n := uint64(len(r.slots)); pos-start > n {
			r.dropped.Add(int64(pos - start - n))
			start = pos - n
		}
		for seq := start; seq < pos; seq++ {
			slot := &r.slots[seq&uint64(len(r.slots)-1)]
			got := slot.seq.Load()
			if got != seq+1 {
				// Torn (0) or already relapped: the staged key is gone.
				r.dropped.Add(1)
				continue
			}
			key := slot.key.Load()
			if slot.seq.Load() != seq+1 {
				r.dropped.Add(1)
				continue
			}
			buf = append(buf, key)
		}
		r.next = pos
	}
	return buf
}

package obs

import (
	"testing"
)

// The recorder's cost model, for the README's overhead table: a disabled
// (nil) recorder is one branch, an enabled one is a handful of atomic
// stores plus a clock read when the caller did not stamp the event.

func BenchmarkRecordDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(Event{Key: uint64(i), Kind: EvAdmit})
	}
}

func BenchmarkRecordEnabled(b *testing.B) {
	r := NewRecorder(16, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(Event{Key: uint64(i), Kind: EvAdmit})
	}
}

func BenchmarkRecordEnabledPrestamped(b *testing.B) {
	r := NewRecorder(16, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(Event{Nanos: int64(i + 1), Key: uint64(i), Kind: EvAdmit})
	}
}

func BenchmarkRecordEnabledParallel(b *testing.B) {
	r := NewRecorder(16, 1024)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		k := uint64(0)
		for pb.Next() {
			k++
			r.Record(Event{Key: k, Kind: EvAdmit})
		}
	})
}

func BenchmarkSpanRecord(b *testing.B) {
	sb := NewSpanBuffer(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sb.Record(Span{Start: int64(i + 1), Key: uint64(i), ParseNs: 10, DispatchNs: 20, FlushNs: 30})
	}
}

package obs

import (
	"sync"
	"testing"
)

func TestSampleHashDeterministicAndMixing(t *testing.T) {
	if SampleHash(42) != SampleHash(42) {
		t.Fatal("hash not deterministic")
	}
	// Sequential inputs must spread across the 32-bit sampling domain:
	// count how many of 10k sequential keys fall under a 10% threshold.
	rate := 0.1
	threshold := uint64(rate * (1 << 32))
	in := 0
	for i := uint64(0); i < 10000; i++ {
		if SampleHash(i)&0xffffffff < threshold {
			in++
		}
	}
	if in < 800 || in > 1200 {
		t.Fatalf("10%% threshold admitted %d of 10000 sequential keys", in)
	}
}

func TestKeySamplerRoundtripInOrder(t *testing.T) {
	s := NewKeySampler(1, 1, 256) // rate 1: everything staged, one ring: order kept
	for i := uint64(1); i <= 100; i++ {
		s.Offer(i)
	}
	got := s.Drain(nil)
	if len(got) != 100 {
		t.Fatalf("drained %d keys, want 100", len(got))
	}
	for i, k := range got {
		if k != uint64(i+1) {
			t.Fatalf("got[%d] = %d, want %d", i, k, i+1)
		}
	}
	if s.Dropped() != 0 || s.Offered() != 100 {
		t.Fatalf("dropped %d offered %d", s.Dropped(), s.Offered())
	}
	// A second drain with nothing new staged returns nothing.
	if again := s.Drain(got[:0]); len(again) != 0 {
		t.Fatalf("re-drain returned %d keys", len(again))
	}
}

func TestKeySamplerSpatialFilter(t *testing.T) {
	s := NewKeySampler(0.25, 2, 1024)
	threshold := uint64(0.25 * (1 << 32))
	want := map[uint64]int{}
	for i := uint64(0); i < 4000; i++ {
		s.Offer(i)
		if SampleHash(i)&0xffffffff < threshold {
			want[i]++
		}
	}
	if len(want) == 0 {
		t.Fatal("test bug: no keys under threshold")
	}
	got := map[uint64]int{}
	for _, k := range s.Drain(nil) {
		got[k]++
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d distinct keys, want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("key %d drained %d times, want %d", k, got[k], n)
		}
	}
}

func TestKeySamplerOverrunCountsDrops(t *testing.T) {
	s := NewKeySampler(1, 1, 64)
	for i := uint64(0); i < 200; i++ {
		s.Offer(i)
	}
	got := s.Drain(nil)
	if len(got) != 64 {
		t.Fatalf("drained %d keys from a lapped 64-slot ring, want 64", len(got))
	}
	// The survivors are the newest 64, still in order.
	for i, k := range got {
		if k != uint64(136+i) {
			t.Fatalf("got[%d] = %d, want %d", i, k, 136+i)
		}
	}
	if s.Dropped() != 136 {
		t.Fatalf("dropped %d, want 136", s.Dropped())
	}
}

func TestKeySamplerNilReceiver(t *testing.T) {
	var s *KeySampler
	s.Offer(1) // must not panic
	if s.Rate() != 0 || s.Offered() != 0 || s.Dropped() != 0 {
		t.Fatal("nil sampler should report zeros")
	}
	if buf := s.Drain(nil); buf != nil {
		t.Fatalf("nil sampler drained %v", buf)
	}
}

func TestKeySamplerClampsConfig(t *testing.T) {
	s := NewKeySampler(5, 0, 0) // rate clamps to 1, rings to 1, perRing to 64
	if s.Rate() != 1 {
		t.Fatalf("rate = %v, want 1", s.Rate())
	}
	s.Offer(7)
	if got := s.Drain(nil); len(got) != 1 || got[0] != 7 {
		t.Fatalf("drain = %v", got)
	}
}

// Concurrent producers against a single live consumer: every offered key is
// either drained or counted dropped, never silently lost (run with -race).
func TestKeySamplerConcurrent(t *testing.T) {
	s := NewKeySampler(1, 4, 256)
	const producers, perProducer = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	done := make(chan int64)
	go func() {
		var buf []uint64
		var n int64
		for {
			buf = s.Drain(buf[:0])
			n += int64(len(buf))
			select {
			case <-stop:
				// Producers are quiesced: one last drain collects the tail.
				buf = s.Drain(buf[:0])
				done <- n + int64(len(buf))
				return
			default:
			}
		}
	}()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				s.Offer(uint64(p*perProducer + i))
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	drained := <-done
	if total := drained + s.Dropped(); total != producers*perProducer {
		t.Fatalf("drained %d + dropped %d = %d, want %d (keys silently lost)",
			drained, s.Dropped(), total, producers*perProducer)
	}
}

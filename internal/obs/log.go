package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a leveled structured logger writing to w. level is one of
// "debug", "info", "warn", "error" (case-insensitive); format is "text" or
// "json". Both cmds thread these straight from -log-level / -log-format.
func NewLogger(level, format string, w io.Writer) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
}

// NewLogfLogger adapts a legacy printf-style sink to a *slog.Logger — the
// deprecation shim that keeps server.Config.Logf callers working while the
// server itself speaks slog. Attributes are rendered key=value after the
// message, at every level.
func NewLogfLogger(logf func(format string, args ...any)) *slog.Logger {
	return slog.New(logfHandler{logf: logf})
}

type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
	group string
}

func (h logfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	write := func(a slog.Attr) {
		fmt.Fprintf(&b, " %s%s=%v", h.group, a.Key, a.Value.Any())
	}
	for _, a := range h.attrs {
		write(a)
	}
	r.Attrs(func(a slog.Attr) bool {
		write(a)
		return true
	})
	h.logf("%s", b.String())
	return nil
}

func (h logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	out := h
	out.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return out
}

func (h logfHandler) WithGroup(name string) slog.Handler {
	out := h
	out.group = h.group + name + "."
	return out
}

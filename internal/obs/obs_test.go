package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Key: 1, Kind: EvAdmit})
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.Total() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder has counts")
	}
	if evs := r.Snapshot(0); evs != nil {
		t.Fatalf("nil recorder snapshot = %v", evs)
	}
	if evs := r.KeyEvents(1, 0); evs != nil {
		t.Fatalf("nil recorder key events = %v", evs)
	}
	var b *SpanBuffer
	b.Record(Span{Key: 1})
	if b.Total() != 0 || b.Dropped() != 0 || b.SlowCount() != 0 {
		t.Fatal("nil span buffer has counts")
	}
	if sp := b.Snapshot(0); sp != nil {
		t.Fatalf("nil span buffer snapshot = %v", sp)
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder(4, 64)
	want := []Event{
		{Nanos: 100, Key: 42, Kind: EvAdmit},
		{Nanos: 200, Key: 42, Kind: EvDemoteGhost, Reason: ReasonProbationOverflow},
		{Nanos: 300, Key: 42, Kind: EvGhostReadmit},
		{Nanos: 400, Key: 42, Kind: EvEvict, Reason: ReasonMainClock, Freq: 3},
	}
	for _, ev := range want {
		r.Record(ev)
	}
	r.Record(Event{Nanos: 250, Key: 7, Kind: EvAdmit}) // different key, interleaved time

	got := r.KeyEvents(42, 0)
	if len(got) != len(want) {
		t.Fatalf("key events = %d, want %d", len(got), len(want))
	}
	for i, ev := range got {
		w := want[i]
		if ev.Nanos != w.Nanos || ev.Key != w.Key || ev.Kind != w.Kind ||
			ev.Reason != w.Reason || ev.Freq != w.Freq {
			t.Fatalf("event %d = %+v, want %+v", i, ev, w)
		}
	}

	all := r.Snapshot(0)
	if len(all) != 5 {
		t.Fatalf("snapshot = %d events, want 5", len(all))
	}
	// Snapshot is globally time-ordered: key 7's event lands between 200 and 300.
	if all[2].Key != 7 {
		t.Fatalf("snapshot order wrong: %+v", all)
	}
	if r.Total() != 5 || r.Dropped() != 0 {
		t.Fatalf("total=%d dropped=%d, want 5/0", r.Total(), r.Dropped())
	}

	// max trims to the most recent.
	if tail := r.Snapshot(2); len(tail) != 2 || tail[1].Nanos != 400 {
		t.Fatalf("snapshot(2) = %+v", tail)
	}
}

func TestRecorderStampsTime(t *testing.T) {
	r := NewRecorder(1, 64)
	r.Record(Event{Key: 9, Kind: EvAdmit})
	evs := r.KeyEvents(9, 0)
	if len(evs) != 1 || evs[0].Nanos == 0 {
		t.Fatalf("expected stamped event, got %+v", evs)
	}
}

func TestRecorderWrapCountsDrops(t *testing.T) {
	r := NewRecorder(1, 64) // single 64-slot ring
	const n = 200
	for i := 0; i < n; i++ {
		r.Record(Event{Nanos: int64(i + 1), Key: 5, Kind: EvAdmit})
	}
	if r.Total() != n {
		t.Fatalf("total = %d, want %d", r.Total(), n)
	}
	if r.Dropped() != n-64 {
		t.Fatalf("dropped = %d, want %d", r.Dropped(), n-64)
	}
	evs := r.KeyEvents(5, 0)
	if len(evs) != 64 {
		t.Fatalf("retained = %d, want 64", len(evs))
	}
	// The retained window is the most recent 64, in order.
	for i, ev := range evs {
		if want := int64(n - 64 + i + 1); ev.Nanos != want {
			t.Fatalf("event %d nanos = %d, want %d", i, ev.Nanos, want)
		}
	}
}

func TestKeyEventsSince(t *testing.T) {
	r := NewRecorder(1, 64)
	for i := 0; i < 10; i++ {
		r.Record(Event{Nanos: int64(i + 1), Key: 3, Kind: EvAdmit})
	}
	evs := r.KeyEventsSince(3, 7, 0)
	if len(evs) != 3 {
		t.Fatalf("since 7: %d events, want 3", len(evs))
	}
	if evs[0].Seq != 7 || evs[2].Seq != 9 {
		t.Fatalf("since 7: seqs %d..%d", evs[0].Seq, evs[2].Seq)
	}
}

// TestRecorderConcurrent hammers record/snapshot under -race: the all-atomic
// seqlock slots must never trip the detector or yield an event whose fields
// disagree with each other.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(4, 256)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := uint64(w)
				// Every event for key w carries Freq w, so a torn slot is
				// detectable as a key/freq mismatch.
				r.Record(Event{Key: key, Kind: EvAdmit, Freq: uint8(w)})
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		for _, ev := range r.Snapshot(0) {
			if uint64(ev.Freq) != ev.Key {
				t.Errorf("torn event: key=%d freq=%d", ev.Key, ev.Freq)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestSpanBufferRoundTrip(t *testing.T) {
	b := NewSpanBuffer(64)
	b.Record(Span{Start: 10, Key: 1, Op: 1, Outcome: 2, ParseNs: 100, DispatchNs: 200, FlushNs: 300})
	b.Record(Span{Start: 20, Key: 2, Op: 3, Outcome: 4, Slow: true, ParseNs: 1, DispatchNs: 2, FlushNs: 3})
	spans := b.Snapshot(0)
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	sp := spans[0]
	if sp.Start != 10 || sp.Key != 1 || sp.Op != 1 || sp.Outcome != 2 || sp.Slow ||
		sp.ParseNs != 100 || sp.DispatchNs != 200 || sp.FlushNs != 300 {
		t.Fatalf("span 0 = %+v", sp)
	}
	if !spans[1].Slow {
		t.Fatal("span 1 lost slow flag")
	}
	if b.Total() != 2 || b.Dropped() != 0 || b.SlowCount() != 1 {
		t.Fatalf("total=%d dropped=%d slow=%d", b.Total(), b.Dropped(), b.SlowCount())
	}
}

func TestSpanBufferWrap(t *testing.T) {
	b := NewSpanBuffer(64)
	for i := 0; i < 100; i++ {
		b.Record(Span{Start: int64(i)})
	}
	if b.Dropped() != 36 {
		t.Fatalf("dropped = %d, want 36", b.Dropped())
	}
	spans := b.Snapshot(10)
	if len(spans) != 10 || spans[9].Start != 99 {
		t.Fatalf("snapshot(10) tail = %+v", spans[len(spans)-1])
	}
}

func TestRecordAllocFree(t *testing.T) {
	r := NewRecorder(2, 64)
	b := NewSpanBuffer(64)
	if avg := testing.AllocsPerRun(500, func() {
		r.Record(Event{Nanos: 1, Key: 77, Kind: EvEvict, Reason: ReasonMainClock})
		b.Record(Span{Start: 1, Key: 77})
	}); avg != 0 {
		t.Fatalf("record allocates %.1f/op, want 0", avg)
	}
	var nilR *Recorder
	var nilB *SpanBuffer
	if avg := testing.AllocsPerRun(500, func() {
		nilR.Record(Event{Key: 77, Kind: EvAdmit})
		nilB.Record(Span{Key: 77})
	}); avg != 0 {
		t.Fatalf("disabled record allocates %.1f/op, want 0", avg)
	}
}

func TestKindAndReasonStrings(t *testing.T) {
	cases := []struct{ got, want string }{
		{EvAdmit.String(), "admit"},
		{EvPromote.String(), "promote"},
		{EvDemoteGhost.String(), "demote-ghost"},
		{EvGhostReadmit.String(), "ghost-readmit"},
		{EvEvict.String(), "evict"},
		{EvExpire.String(), "expire"},
		{EvDelete.String(), "delete"},
		{EvHotReplicate.String(), "hot-replicate"},
		{EvHotDemote.String(), "hot-demote"},
		{EvNone.String(), "none"},
		{ReasonProbationOverflow.String(), "probation-overflow"},
		{ReasonMainClock.String(), "main-clock"},
		{ReasonCapacity.String(), "capacity"},
		{ReasonExpired.String(), "expired"},
		{ReasonDeleted.String(), "deleted"},
		{ReasonNone.String(), "none"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("string = %q, want %q", c.got, c.want)
		}
	}
}

func TestNewLogger(t *testing.T) {
	var sb strings.Builder
	lg, err := NewLogger("warn", "json", &sb)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hidden")
	lg.Warn("shown", "k", "v")
	out := sb.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info leaked past warn level: %q", out)
	}
	if !strings.Contains(out, `"msg":"shown"`) || !strings.Contains(out, `"k":"v"`) {
		t.Errorf("json output missing fields: %q", out)
	}

	sb.Reset()
	lg, err = NewLogger("", "", &sb) // defaults: info, text
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hidden")
	lg.Info("shown")
	if out := sb.String(); strings.Contains(out, "hidden") || !strings.Contains(out, "msg=shown") {
		t.Errorf("text default output wrong: %q", out)
	}

	if _, err := NewLogger("loud", "text", &sb); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger("info", "xml", &sb); err == nil {
		t.Error("bad format accepted")
	}
}

func TestLogfShim(t *testing.T) {
	var lines []string
	lg := NewLogfLogger(func(format string, args ...any) {
		lines = append(lines, strings.TrimSpace(strings.ReplaceAll(format, "%s", "")+join(args)))
	})
	lg.With("conn", 7).Info("accepted", "remote", "1.2.3.4")
	if len(lines) != 1 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.Contains(lines[0], "accepted") || !strings.Contains(lines[0], "conn=7") ||
		!strings.Contains(lines[0], "remote=1.2.3.4") {
		t.Fatalf("shim line = %q", lines[0])
	}
}

func join(args []any) string {
	var b strings.Builder
	for _, a := range args {
		if s, ok := a.(string); ok {
			b.WriteString(s)
		}
	}
	return b.String()
}

package obs

import (
	"sync/atomic"
)

// Span is one sampled request's phase timeline, recorded by the server's
// connection loop. Phases are durations, not nested intervals: Parse covers
// reading and decoding the request's bytes (excluding the idle wait for the
// first byte), Dispatch the cache operation plus response formatting, and
// Flush the batched socket write that carried this request's response (one
// flush may close out several pipelined spans, which then share the stamp).
type Span struct {
	// Seq orders spans within the buffer.
	Seq uint64
	// Start is the wall-clock UnixNano at which parsing began.
	Start int64
	// Key is the request's first key digest (0 for keyless commands).
	Key uint64
	// Op is the producer's request-op code (the server's Op values); obs
	// stores it opaquely and the producer renders the name.
	Op uint8
	// Outcome is the producer's result code (hit, miss, stored, ...).
	Outcome uint8
	// Slow marks spans recorded because they crossed the slow-request
	// threshold rather than (only) by sampling.
	Slow bool
	// ParseNs, DispatchNs, FlushNs are the phase durations in nanoseconds.
	// FlushNs is 0 when the span was evicted from the pending set before
	// its batch flushed.
	ParseNs, DispatchNs, FlushNs int64
}

// spanSlot mirrors eventSlot: all-atomic fields under a per-slot seqlock.
type spanSlot struct {
	seq      atomic.Uint64
	start    atomic.Int64
	key      atomic.Uint64
	packed   atomic.Uint64 // op<<16 | outcome<<8 | slow
	parse    atomic.Int64
	dispatch atomic.Int64
	flush    atomic.Int64
}

func packSpan(op, outcome uint8, slow bool) uint64 {
	p := uint64(op)<<16 | uint64(outcome)<<8
	if slow {
		p |= 1
	}
	return p
}

func unpackSpan(p uint64) (op, outcome uint8, slow bool) {
	return uint8(p >> 16), uint8(p >> 8), p&1 != 0
}

// SpanBuffer is a single lock-free overwrite-oldest ring of request spans.
// A nil *SpanBuffer records nothing; the disabled check is one branch.
type SpanBuffer struct {
	pos   atomic.Uint64
	slow  atomic.Int64
	_     [48]byte
	slots []spanSlot
}

// NewSpanBuffer returns a buffer retaining the most recent size spans
// (rounded up to a power of two, minimum 64).
func NewSpanBuffer(size int) *SpanBuffer {
	if size < 64 {
		size = 64
	}
	return &SpanBuffer{slots: make([]spanSlot, ceilPow2(size))}
}

// Record appends sp. Nil-safe and allocation-free.
func (b *SpanBuffer) Record(sp Span) {
	if b == nil {
		return
	}
	if sp.Slow {
		b.slow.Add(1)
	}
	n := b.pos.Add(1) - 1
	s := &b.slots[n&uint64(len(b.slots)-1)]
	s.seq.Store(0)
	s.start.Store(sp.Start)
	s.key.Store(sp.Key)
	s.packed.Store(packSpan(sp.Op, sp.Outcome, sp.Slow))
	s.parse.Store(sp.ParseNs)
	s.dispatch.Store(sp.DispatchNs)
	s.flush.Store(sp.FlushNs)
	s.seq.Store(n + 1)
}

// Total returns the number of spans ever recorded.
func (b *SpanBuffer) Total() int64 {
	if b == nil {
		return 0
	}
	return int64(b.pos.Load())
}

// Dropped returns how many spans were overwritten before they could be
// read. Monotonic.
func (b *SpanBuffer) Dropped() int64 {
	if b == nil {
		return 0
	}
	if pos := b.pos.Load(); pos > uint64(len(b.slots)) {
		return int64(pos - uint64(len(b.slots)))
	}
	return 0
}

// SlowCount returns how many recorded spans crossed the slow threshold.
func (b *SpanBuffer) SlowCount() int64 {
	if b == nil {
		return 0
	}
	return b.slow.Load()
}

// Snapshot returns up to max retained spans, oldest first. max <= 0 means
// all. Like Recorder.Snapshot it never blocks writers.
func (b *SpanBuffer) Snapshot(max int) []Span {
	if b == nil {
		return nil
	}
	var out []Span
	for i := range b.slots {
		s := &b.slots[i]
		seq := s.seq.Load()
		if seq == 0 {
			continue
		}
		sp := Span{
			Seq:        seq - 1,
			Start:      s.start.Load(),
			Key:        s.key.Load(),
			ParseNs:    s.parse.Load(),
			DispatchNs: s.dispatch.Load(),
			FlushNs:    s.flush.Load(),
		}
		sp.Op, sp.Outcome, sp.Slow = unpackSpan(s.packed.Load())
		if s.seq.Load() != seq {
			continue
		}
		out = append(out, sp)
	}
	// Order by Seq: the single ring's sequence is the record order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Seq < out[j-1].Seq; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

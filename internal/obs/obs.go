// Package obs is the serving stack's observability layer: lock-free ring
// buffers of cache lifecycle events, sampled per-request spans, and
// structured-logging helpers.
//
// The paper's whole argument is about *when* metadata moves — promotion is
// lazy (deferred to eviction time) and demotion is quick (probation + ghost)
// — yet aggregate counters cannot show a single object moving probation →
// ghost → main, or say which requests were slow and why. This package
// records those per-event details without slowing the hot path:
//
//   - Recording is a nil-check away from free. Every producer holds a
//     *Recorder (or *SpanBuffer) that may be nil; the disabled path is one
//     predictable branch and zero allocations.
//   - When enabled, recording is lock-free and allocation-free: a ring slot
//     is claimed with one atomic add and filled with plain atomic stores
//     guarded by a per-slot sequence word (a seqlock), so writers never
//     block each other or readers, and readers (the admin endpoints) never
//     block writers.
//   - Buffers are bounded and overwrite-oldest. Nothing is ever dropped on
//     the write side; events overwritten before they could be read are
//     counted and exported, so a scrape can say how much history was lost.
package obs

import (
	"sync/atomic"
	"time"
)

// EventKind identifies one step of an object's cache lifecycle.
type EventKind uint8

// The lifecycle steps, in the order an unlucky object meets them.
const (
	// EvNone is the zero kind; it never appears in a recorded event.
	EvNone EventKind = iota
	// EvAdmit is an insert of a new key — into the probationary FIFO for
	// QD-LP-FIFO, or directly into the ring/list for single-queue policies.
	EvAdmit
	// EvPromote is a lazy-promotion decision made at eviction time: a
	// probationary object moving to the main cache, or a CLOCK/SIEVE hand
	// granting a second chance to a referenced object. Freq carries the
	// counter value that earned the promotion.
	EvPromote
	// EvDemoteGhost is quick demotion: a probationary object evicted to the
	// ghost FIFO without ever being requested again.
	EvDemoteGhost
	// EvGhostReadmit is a ghost hit: a recently demoted key re-requested and
	// admitted straight into the main cache — the signal that quick demotion
	// guessed wrong.
	EvGhostReadmit
	// EvEvict is a capacity eviction from the main structure.
	EvEvict
	// EvExpire is a TTL-driven removal (the server's already-expired store).
	EvExpire
	// EvDelete is an explicit client delete.
	EvDelete
	// EvHotReplicate is a cluster-tier event: a key's access frequency
	// crossed the router's hot threshold and the key was replicated to its
	// follower nodes (reads fan out, writes fan to all replicas).
	EvHotReplicate
	// EvHotDemote is the reverse edge: sketch aging decayed a hot key below
	// threshold, so the router stops fanning its reads and writes.
	EvHotDemote
)

// String returns the kind's wire name, used by /debug/events.
func (k EventKind) String() string {
	switch k {
	case EvAdmit:
		return "admit"
	case EvPromote:
		return "promote"
	case EvDemoteGhost:
		return "demote-ghost"
	case EvGhostReadmit:
		return "ghost-readmit"
	case EvEvict:
		return "evict"
	case EvExpire:
		return "expire"
	case EvDelete:
		return "delete"
	case EvHotReplicate:
		return "hot-replicate"
	case EvHotDemote:
		return "hot-demote"
	}
	return "none"
}

// Reason says why an object left the cache (or was reshuffled). It rides on
// both lifecycle events and the eviction hook, so a hook consumer can tell a
// probation overflow from a main-ring eviction without re-deriving policy
// state.
type Reason uint8

// The eviction reasons.
const (
	// ReasonNone marks events that are not removals (admit, promote).
	ReasonNone Reason = iota
	// ReasonProbationOverflow is quick demotion: the probationary FIFO
	// wrapped and the object was never re-requested.
	ReasonProbationOverflow
	// ReasonMainClock is a main-structure eviction chosen by a CLOCK or
	// SIEVE hand finding a zero counter.
	ReasonMainClock
	// ReasonCapacity is a plain capacity eviction with no scan (LRU tail).
	ReasonCapacity
	// ReasonExpired is a TTL-driven removal.
	ReasonExpired
	// ReasonDeleted is an explicit client delete.
	ReasonDeleted
	// ReasonSizeAdmission is a size-aware admission rejection: the object
	// was larger than the configured fraction of the probation byte budget,
	// so it was never admitted past probation on first touch (quick
	// demotion applied to bytes).
	ReasonSizeAdmission
)

// String returns the reason's wire name, used by /debug/events.
func (r Reason) String() string {
	switch r {
	case ReasonProbationOverflow:
		return "probation-overflow"
	case ReasonMainClock:
		return "main-clock"
	case ReasonCapacity:
		return "capacity"
	case ReasonExpired:
		return "expired"
	case ReasonDeleted:
		return "deleted"
	case ReasonSizeAdmission:
		return "size-admission"
	}
	return "none"
}

// Event is one lifecycle step of one object. Events are recorded at points
// where the owning policy shard's exclusive lock is already held (admit,
// eviction-time scans, delete), never on the shared-lock hit path, so
// enabling them does not change the paper's hit-path locking discipline.
type Event struct {
	// Seq orders events within one ring (one key's events always land in
	// the same ring, so a key's history is totally ordered by Seq).
	Seq uint64
	// Nanos is the wall-clock UnixNano timestamp. Record stamps it unless
	// the producer already set it (tests use fixed stamps).
	Nanos int64
	// Key is the object's 64-bit digest — the same digest the KV data plane
	// and policy plane key on, so an event stream joins against both.
	Key uint64
	// Kind is the lifecycle step.
	Kind EventKind
	// Reason qualifies removals.
	Reason Reason
	// Freq is the CLOCK counter (or SIEVE visited bit) observed at the
	// decision point — the "clock bits at the decision" a lazy-promotion
	// postmortem needs.
	Freq uint8
}

// eventSlot is one ring slot. All fields are atomics so concurrent
// record/snapshot stays within the Go memory model (and clean under -race):
// the writer publishes with seq=0 → fields → seq=pos+1, and a reader accepts
// a slot only if seq is nonzero and unchanged across its field reads.
type eventSlot struct {
	seq    atomic.Uint64
	nanos  atomic.Int64
	key    atomic.Uint64
	packed atomic.Uint64 // kind<<16 | reason<<8 | freq
}

func packEvent(kind EventKind, reason Reason, freq uint8) uint64 {
	return uint64(kind)<<16 | uint64(reason)<<8 | uint64(freq)
}

func unpackEvent(p uint64) (EventKind, Reason, uint8) {
	return EventKind(p >> 16), Reason(p >> 8), uint8(p)
}

// eventRing is one lock-free ring. pos is the next sequence number; slot
// i&mask holds the event with Seq i until overwritten a lap later. Writers
// claim distinct slots via the atomic add, so a torn slot requires a writer
// to be lapped mid-write — with the default sizes that means thousands of
// evictions between two adjacent stores, and the seqlock turns even that
// into a skipped slot rather than a corrupt read.
type eventRing struct {
	pos   atomic.Uint64
	_     [56]byte // keep hot write cursors off each other's cache lines
	slots []eventSlot
}

func (r *eventRing) record(ev Event) {
	n := r.pos.Add(1) - 1
	s := &r.slots[n&uint64(len(r.slots)-1)]
	s.seq.Store(0) // mark in-progress; readers skip
	s.nanos.Store(ev.Nanos)
	s.key.Store(ev.Key)
	s.packed.Store(packEvent(ev.Kind, ev.Reason, ev.Freq))
	s.seq.Store(n + 1) // publish
}

// read returns the slot's event and whether it was stable (published and not
// overwritten mid-read).
func (s *eventSlot) read() (Event, bool) {
	seq := s.seq.Load()
	if seq == 0 {
		return Event{}, false
	}
	ev := Event{Seq: seq - 1, Nanos: s.nanos.Load(), Key: s.key.Load()}
	ev.Kind, ev.Reason, ev.Freq = unpackEvent(s.packed.Load())
	if s.seq.Load() != seq {
		return Event{}, false
	}
	return ev, true
}

// Recorder is a sharded set of lifecycle-event rings. A key's events always
// land in the ring selected by its digest, so one key's history is ordered
// and cheap to extract; different keys spread across rings, keeping the
// write cursors uncontended. The zero value is not usable; a nil *Recorder
// is, and records nothing.
type Recorder struct {
	rings []eventRing
	mask  uint64
}

// mix is the same finalizer-style bit mixer the concurrent caches use for
// shard selection, duplicated here so obs stays a leaf package.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ceilPow2 rounds n up to a power of two (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewRecorder returns a recorder with rings ring buffers of perRing slots
// each (both rounded up to powers of two; minimums 1 and 64). Total retained
// history is rings×perRing events.
func NewRecorder(rings, perRing int) *Recorder {
	if rings < 1 {
		rings = 1
	}
	if perRing < 64 {
		perRing = 64
	}
	rings = ceilPow2(rings)
	perRing = ceilPow2(perRing)
	r := &Recorder{rings: make([]eventRing, rings), mask: uint64(rings - 1)}
	for i := range r.rings {
		r.rings[i].slots = make([]eventSlot, perRing)
	}
	return r
}

// Record appends ev to the ring its key hashes to, stamping Seq and (if
// unset) Nanos. Recording on a nil Recorder is a no-op — producers call
// rec.Record unconditionally and pay one branch when tracing is off.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	if ev.Nanos == 0 {
		ev.Nanos = time.Now().UnixNano()
	}
	r.rings[mix(ev.Key)&r.mask].record(ev)
}

// Enabled reports whether events are being recorded; producers may use it
// to skip building an Event at all.
func (r *Recorder) Enabled() bool { return r != nil }

// Total returns the number of events ever recorded.
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	var total int64
	for i := range r.rings {
		total += int64(r.rings[i].pos.Load())
	}
	return total
}

// Dropped returns how many recorded events have been overwritten before
// they could be read — the ring-buffer drop counter the metrics registry
// exports. It is monotonic.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	var dropped int64
	for i := range r.rings {
		ring := &r.rings[i]
		if pos := ring.pos.Load(); pos > uint64(len(ring.slots)) {
			dropped += int64(pos - uint64(len(ring.slots)))
		}
	}
	return dropped
}

// Snapshot returns up to max retained events across all rings, oldest
// first (ordered by timestamp, then ring sequence). max <= 0 means all.
// The snapshot is taken without blocking writers; slots being overwritten
// mid-read are skipped.
func (r *Recorder) Snapshot(max int) []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.rings {
		out = appendRing(out, &r.rings[i], 0, nil)
	}
	sortEvents(out)
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// KeyEvents returns up to max retained events for one key digest, oldest
// first. max <= 0 means all.
func (r *Recorder) KeyEvents(key uint64, max int) []Event {
	return r.KeyEventsSince(key, 0, max)
}

// KeyEventsSince returns the key's retained events with Seq >= since,
// oldest first — the incremental read /debug/trace polls with. max <= 0
// means all.
func (r *Recorder) KeyEventsSince(key uint64, since uint64, max int) []Event {
	if r == nil {
		return nil
	}
	match := key
	out := appendRing(nil, &r.rings[mix(key)&r.mask], since, &match)
	sortEvents(out)
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// appendRing collects the ring's stable slots with Seq >= since, optionally
// filtered to one key.
func appendRing(out []Event, ring *eventRing, since uint64, key *uint64) []Event {
	for i := range ring.slots {
		ev, ok := ring.slots[i].read()
		if !ok || ev.Seq < since {
			continue
		}
		if key != nil && ev.Key != *key {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// sortEvents orders by timestamp, breaking ties (same-nanosecond bursts,
// fixed test stamps) by ring sequence. Insertion sort: snapshots are small
// and nearly sorted already.
func sortEvents(evs []Event) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && less(evs[j], evs[j-1]); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

func less(a, b Event) bool {
	if a.Nanos != b.Nanos {
		return a.Nanos < b.Nanos
	}
	return a.Seq < b.Seq
}

package workload

import (
	"math"

	"repro/internal/trace"
)

// AssignSizes gives every request a per-key deterministic object size drawn
// from a log-normal distribution with the given median (in bytes) and
// sigma ≈ 1.2 — the heavy-tailed shape reported for web object sizes. The
// same key always gets the same size, so traces stay coherent; sizes are
// clamped to [64, 64·median] to keep single objects from dwarfing a cache.
//
// The paper's experiments assume uniform sizes; sized traces feed the
// size-aware extension in internal/sizeaware.
func AssignSizes(tr *trace.Trace, medianBytes int) {
	if medianBytes < 64 {
		medianBytes = 64
	}
	maxSize := uint32(64 * medianBytes)
	for i := range tr.Requests {
		tr.Requests[i].Size = sizeOf(tr.Requests[i].Key, float64(medianBytes), maxSize)
	}
}

func sizeOf(key uint64, median float64, maxSize uint32) uint32 {
	// Two independent uniforms from the key hash drive Box–Muller.
	h1 := splitmix64(key ^ 0xabcdef1234567890)
	h2 := splitmix64(h1)
	u1 := (float64(h1>>11) + 1) / (1 << 53) // (0,1]
	u2 := float64(h2>>11) / (1 << 53)       // [0,1)
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	const sigma = 1.2
	s := median * math.Exp(sigma*z)
	if s < 64 {
		s = 64
	}
	if s > float64(maxSize) {
		s = float64(maxSize)
	}
	return uint32(s)
}

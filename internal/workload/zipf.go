// Package workload generates the synthetic traces that stand in for the
// paper's 5307 production traces (see DESIGN.md, "Substitutions").
//
// Each of the paper's ten Table-1 dataset collections is modelled as a
// Family: a parameterized mixture of access-pattern components — Zipf
// popularity with catalog drift (popularity decay), sequential scans,
// loops, one-hit wonders, LRU-stack-distance temporal locality, and abrupt
// phase changes — whose parameters are chosen so the family reproduces the
// qualitative behaviour the paper reports for the corresponding dataset.
// Every generator is fully deterministic given a seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^alpha. Unlike math/rand's Zipf it accepts any alpha >= 0
// (production cache workloads cluster around alpha ≈ 0.6–1.2, below
// math/rand's s > 1 requirement). Sampling inverts a precomputed CDF with
// binary search: exact, O(log n) per sample, O(n) memory.
type Zipf struct {
	cdf []float64
	rng *rand.Rand
}

// NewZipf returns a Zipf sampler over [0, n) with skew alpha, drawing
// randomness from rng.
func NewZipf(rng *rand.Rand, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("workload: Zipf needs n > 0, got %d", n))
	}
	if alpha < 0 {
		panic(fmt.Sprintf("workload: Zipf needs alpha >= 0, got %v", alpha))
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -alpha)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, rng: rng}
}

// Next returns the next sampled rank.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the rank-space size.
func (z *Zipf) N() int { return len(z.cdf) }

// splitmix64 is a strong 64-bit mixing function used to scramble catalog
// indices into key space, so key numeric order carries no locality.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestZipfBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 100, 0.9)
	for i := 0; i < 10000; i++ {
		r := z.Next()
		if r < 0 || r >= 100 {
			t.Fatalf("rank %d out of [0,100)", r)
		}
	}
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
}

// The empirical rank distribution must be monotonically decreasing-ish and
// match the analytic head probability.
func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, alpha, samples = 1000, 1.0, 200000
	z := NewZipf(rng, n, alpha)
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		counts[z.Next()]++
	}
	// Analytic P(rank 0) = 1/H_n.
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	want := 1 / h
	got := float64(counts[0]) / samples
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("P(rank 0) = %v, want ≈ %v", got, want)
	}
	if counts[0] <= counts[n-1] {
		t.Fatal("head not more popular than tail")
	}
}

func TestZipfUniformWhenAlphaZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(rng, 10, 0)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)/100000-0.1) > 0.01 {
			t.Fatalf("alpha=0 not uniform: counts[%d]=%d", i, c)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, f := range []func(){
		func() { NewZipf(rng, 0, 1) },
		func() { NewZipf(rng, 10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("NewZipf with bad args did not panic")
				}
			}()
			f()
		}()
	}
}

func TestGenerateDeterministic(t *testing.T) {
	f := TwitterLike()
	a := f.Generate(7, 2000, 20000)
	b := f.Generate(7, 2000, 20000)
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("lengths differ")
	}
	for i := range a.Requests {
		if a.Requests[i].Key != b.Requests[i].Key {
			t.Fatalf("request %d differs", i)
		}
	}
	c := f.Generate(8, 2000, 20000)
	same := true
	for i := range a.Requests {
		if a.Requests[i].Key != c.Requests[i].Key {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateShape(t *testing.T) {
	for _, f := range Families() {
		tr := f.Generate(1, 3000, 30000)
		if tr.Len() != 30000 {
			t.Fatalf("%s: %d requests", f.Name, tr.Len())
		}
		if tr.Class != f.Class {
			t.Fatalf("%s: class mismatch", f.Name)
		}
		st := tr.ComputeStats()
		if st.Objects < 100 {
			t.Fatalf("%s: only %d unique objects", f.Name, st.Objects)
		}
		if st.MeanFrequency < 1.05 {
			t.Fatalf("%s: almost no reuse (mean freq %v)", f.Name, st.MeanFrequency)
		}
		for i, r := range tr.Requests {
			if r.Time != int64(i) {
				t.Fatalf("%s: Time not the request index", f.Name)
			}
			if r.Size != 1 {
				t.Fatalf("%s: non-uniform size", f.Name)
			}
		}
	}
}

// The social family must show higher object re-reference frequency than the
// CDN family (paper footnote 3: first-layer caches see most objects more
// than once).
func TestSocialHasHighReuse(t *testing.T) {
	social := SocialLike().Generate(1, 5000, 100000).ComputeStats()
	cdn := MajorCDNLike().Generate(1, 5000, 100000).ComputeStats()
	if social.MeanFrequency <= cdn.MeanFrequency {
		t.Fatalf("social mean freq %v <= cdn %v", social.MeanFrequency, cdn.MeanFrequency)
	}
	socialOneHit := float64(social.OneHitWonders) / float64(social.Objects)
	cdnOneHit := float64(cdn.OneHitWonders) / float64(cdn.Objects)
	if socialOneHit >= cdnOneHit {
		t.Fatalf("social one-hit ratio %v >= cdn %v", socialOneHit, cdnOneHit)
	}
}

func TestFamilyByName(t *testing.T) {
	if _, ok := FamilyByName("msr"); !ok {
		t.Fatal("msr not found")
	}
	if _, ok := FamilyByName("nope"); ok {
		t.Fatal("bogus family found")
	}
	if len(Families()) != 10 {
		t.Fatalf("want 10 families, got %d", len(Families()))
	}
}

func TestCacheSize(t *testing.T) {
	if CacheSize(100000, SmallCacheFrac) != 100 {
		t.Fatalf("small = %d", CacheSize(100000, SmallCacheFrac))
	}
	if CacheSize(100000, LargeCacheFrac) != 10000 {
		t.Fatalf("large = %d", CacheSize(100000, LargeCacheFrac))
	}
	if CacheSize(10, SmallCacheFrac) != 8 {
		t.Fatal("floor not applied")
	}
}

func TestGeneratePanicsOnBadSizes(t *testing.T) {
	f := MSRLike()
	for _, args := range [][2]int{{0, 10}, {10, 0}, {-1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Generate(%v) did not panic", args)
				}
			}()
			f.Generate(1, args[0], args[1])
		}()
	}
}

// Property: key namespaces never collide — catalog, one-hit, scan, and
// loop keys are disjoint by construction (top two bits).
func TestKeyNamespaces(t *testing.T) {
	err := quick.Check(func(idx uint64) bool {
		tags := []uint64{tagCatalog, tagOneHit, tagScan, tagLoop}
		seen := map[uint64]bool{}
		for _, tag := range tags {
			k := makeKey(tag, idx)
			if seen[k] {
				return false
			}
			seen[k] = true
			if k>>62 != tag {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// Popularity decay: with a positive DecayRate, keys from the first tenth of
// the trace should rarely appear in the last tenth.
func TestDecay(t *testing.T) {
	f := Family{Name: "decay", Class: trace.Web, Alpha: 0.8, DecayRate: 0.1}
	tr := f.Generate(1, 2000, 100000)
	early := map[uint64]bool{}
	for _, r := range tr.Requests[:10000] {
		early[r.Key] = true
	}
	lateHits := 0
	for _, r := range tr.Requests[90000:] {
		if early[r.Key] {
			lateHits++
		}
	}
	if frac := float64(lateHits) / 10000; frac > 0.25 {
		t.Fatalf("decayed keys still account for %.2f of late requests", frac)
	}
}

package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/trace"
)

// Key namespaces: the top two key bits tag the generating component so the
// scrambled key spaces cannot collide.
const (
	tagCatalog uint64 = 0
	tagOneHit  uint64 = 1
	tagScan    uint64 = 2
	tagLoop    uint64 = 3
)

func makeKey(tag, idx uint64) uint64 {
	return tag<<62 | splitmix64(idx)>>2
}

// Family is a parameterized synthetic workload model standing in for one of
// the paper's Table-1 dataset collections. The zero value is not useful;
// use the constructors or Families.
type Family struct {
	// Name of the modelled dataset collection (lowercase, e.g. "msr").
	Name string
	// Class is block or web, matching the paper's figure split.
	Class trace.Class

	// Alpha is the Zipf skew of the popularity distribution.
	Alpha float64
	// DecayRate is the catalog drift in objects per request: the rate at
	// which new objects arrive and old objects decay in popularity. 0
	// disables popularity decay.
	DecayRate float64
	// OneHitFrac is the fraction of requests addressed to fresh
	// never-reused keys (one-hit wonders, §4).
	OneHitFrac float64
	// ScanFrac is the fraction of requests belonging to sequential scans
	// of ScanLen never-revisited keys.
	ScanFrac float64
	ScanLen  int
	// LoopFrac is the fraction of requests cycling over a fixed window of
	// LoopLen keys (the loop pattern that thrashes LRU).
	LoopFrac float64
	LoopLen  int
	// RecencyFrac is the fraction of requests re-referencing a recently
	// requested key, with reference distance exponentially distributed
	// with mean RecencyScale×objects (minimum 1: a tiny scale yields
	// immediate re-references, i.e. correlated bursts). This component
	// models the temporal locality of first-layer social-network caches:
	// bursts saturate CLOCK's single reference bit, which is the paper's
	// explanation for LRU beating FIFO-Reinsertion on those datasets.
	RecencyFrac  float64
	RecencyScale float64
	// PhaseEvery inserts an abrupt working-set change every PhaseEvery
	// requests, replacing PhaseShiftFrac of the catalog. 0 disables.
	PhaseEvery     int
	PhaseShiftFrac float64

	// DefaultObjects and DefaultRequests set the canonical trace scale for
	// this family (used by cmd/experiments' Table-1 inventory; scaled
	// down by -scale for quick runs).
	DefaultObjects  int
	DefaultRequests int
	// TableTraces is the trace count of the modelled collection in the
	// paper's Table 1 (for the inventory printout).
	TableTraces int
}

// jitter derives per-seed parameter variation, modelling the within-
// collection diversity of real trace datasets (the paper's families contain
// 2–4030 distinct traces each). Seed 1 keeps the canonical parameters, so
// single-trace experiments stay at the family's calibrated center.
func (f Family) jittered(seed int64) Family {
	if seed == 1 {
		return f
	}
	rng := rand.New(rand.NewSource(seed * 7919))
	u := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }
	f.Alpha *= u(0.85, 1.15)
	f.OneHitFrac *= u(0.6, 1.4)
	f.ScanFrac *= u(0.6, 1.4)
	f.LoopFrac *= u(0.6, 1.4)
	f.RecencyFrac *= u(0.85, 1.15)
	f.DecayRate *= u(0.6, 1.4)
	// Keep the component probabilities a valid mixture.
	if sum := f.OneHitFrac + f.LoopFrac + f.RecencyFrac; sum > 0.95 {
		scale := 0.95 / sum
		f.OneHitFrac *= scale
		f.LoopFrac *= scale
		f.RecencyFrac *= scale
	}
	return f
}

// Generate produces a deterministic trace with the given catalog size and
// request count. Different seeds give statistically independent traces of
// the same family, with mild per-seed parameter jitter mimicking the
// diversity inside real dataset collections.
func (f Family) Generate(seed int64, objects, requests int) *trace.Trace {
	if objects <= 0 || requests <= 0 {
		panic(fmt.Sprintf("workload: Generate needs positive sizes, got objects=%d requests=%d", objects, requests))
	}
	name := f.Name
	f = f.jittered(seed)
	f.Name = name
	rng := rand.New(rand.NewSource(seed))
	zipf := NewZipf(rng, objects, f.Alpha)

	tr := &trace.Trace{
		Name:     fmt.Sprintf("%s-%d", f.Name, seed),
		Class:    f.Class,
		Requests: make([]trace.Request, 0, requests),
	}

	// Component thresholds for a single uniform draw per request. A scan,
	// once started, occupies the next ScanLen requests, so the start
	// probability is ScanFrac/ScanLen to make ScanFrac the approximate
	// share of requests that belong to scans.
	scanLenForProb := f.ScanLen
	if scanLenForProb <= 0 {
		scanLenForProb = 64
	}
	pOneHit := f.OneHitFrac
	pScan := pOneHit + f.ScanFrac/float64(scanLenForProb)
	pLoop := pScan + f.LoopFrac
	pRecency := pLoop + f.RecencyFrac

	var (
		catalogBase   float64 // drift position
		phaseOffset   uint64
		oneHitCounter uint64
		scanCursor    uint64
		scanRemaining int
		loopPos       int
		history       []uint64 // ring of recently emitted keys
		histPos       int
	)
	histCap := 4 * objects
	if histCap > 1<<16 {
		histCap = 1 << 16
	}
	history = make([]uint64, 0, histCap)

	loopLen := f.LoopLen
	if loopLen <= 0 {
		loopLen = objects / 2
	}
	scanLen := f.ScanLen
	if scanLen <= 0 {
		scanLen = 64
	}

	emit := func(key uint64, i int) {
		tr.Requests = append(tr.Requests, trace.Request{Key: key, Size: 1, Time: int64(i)})
		if histCap > 0 {
			if len(history) < histCap {
				history = append(history, key)
			} else {
				history[histPos] = key
				histPos = (histPos + 1) % histCap
			}
		}
	}

	catalogKey := func(rank int) uint64 {
		// rank 0 is the most popular; map it to the newest arrival so
		// popularity decays smoothly as the catalog drifts.
		idx := uint64(int(catalogBase)+objects-1-rank) + phaseOffset
		return makeKey(tagCatalog, idx)
	}

	for i := 0; i < requests; i++ {
		if f.PhaseEvery > 0 && i > 0 && i%f.PhaseEvery == 0 {
			phaseOffset += uint64(f.PhaseShiftFrac * float64(objects))
		}
		catalogBase += f.DecayRate

		if scanRemaining > 0 {
			scanRemaining--
			scanCursor++
			emit(makeKey(tagScan, scanCursor), i)
			continue
		}

		u := rng.Float64()
		switch {
		case u < pOneHit:
			oneHitCounter++
			emit(makeKey(tagOneHit, oneHitCounter), i)
		case u < pScan:
			scanRemaining = scanLen - 1
			scanCursor++
			emit(makeKey(tagScan, scanCursor), i)
		case u < pLoop:
			loopPos = (loopPos + 1) % loopLen
			emit(makeKey(tagLoop, uint64(loopPos)), i)
		case u < pRecency && len(history) > 0:
			mean := f.RecencyScale * float64(objects)
			if mean < 1 {
				mean = 1
			}
			d := int(rng.ExpFloat64() * mean)
			if d >= len(history) {
				d = len(history) - 1
			}
			// history is a ring; index d steps back from the newest.
			var idx int
			if len(history) < histCap {
				idx = len(history) - 1 - d
			} else {
				idx = ((histPos-1-d)%histCap + histCap) % histCap
			}
			emit(history[idx], i)
		default:
			emit(catalogKey(zipf.Next()), i)
		}
	}
	return tr
}

// GenerateDefault produces a trace at the family's canonical scale divided
// by scaleDown (minimum scale enforced).
func (f Family) GenerateDefault(seed int64, scaleDown int) *trace.Trace {
	if scaleDown < 1 {
		scaleDown = 1
	}
	obj := f.DefaultObjects / scaleDown
	if obj < 1000 {
		obj = 1000
	}
	req := f.DefaultRequests / scaleDown
	if req < 10000 {
		req = 10000
	}
	return f.Generate(seed, obj, req)
}

// The ten Table-1 dataset families. Parameters are calibrated so each
// family reproduces the qualitative behaviour the paper reports for the
// corresponding dataset (see EXPERIMENTS.md).

// MSRLike models the MSR Cambridge block traces: skewed reuse with heavy
// scan/loop pollution from enterprise storage workloads.
func MSRLike() Family {
	return Family{
		Name: "msr", Class: trace.Block,
		Alpha: 0.8, ScanFrac: 0.12, ScanLen: 200, LoopFrac: 0.10, LoopLen: 0,
		OneHitFrac: 0.05, RecencyFrac: 0.30, RecencyScale: 0.0003,
		PhaseEvery: 200000, PhaseShiftFrac: 0.25,
		DefaultObjects: 60000, DefaultRequests: 1200000, TableTraces: 13,
	}
}

// FIULike models the FIU block traces: small working sets with high reuse.
func FIULike() Family {
	return Family{
		Name: "fiu", Class: trace.Block,
		Alpha: 1.1, ScanFrac: 0.05, ScanLen: 100, LoopFrac: 0.05, LoopLen: 0,
		OneHitFrac: 0.10, RecencyFrac: 0.30, RecencyScale: 0.0003,
		DefaultObjects: 30000, DefaultRequests: 1500000, TableTraces: 9,
	}
}

// CloudPhysicsLike models the CloudPhysics VM block traces: mixed skew with
// phase changes from VM lifecycles.
func CloudPhysicsLike() Family {
	return Family{
		Name: "cloudphysics", Class: trace.Block,
		Alpha: 0.9, ScanFrac: 0.10, ScanLen: 150, LoopFrac: 0.05, LoopLen: 0,
		OneHitFrac: 0.08, RecencyFrac: 0.25, RecencyScale: 0.0003,
		PhaseEvery: 150000, PhaseShiftFrac: 0.25,
		DefaultObjects: 80000, DefaultRequests: 1000000, TableTraces: 106,
	}
}

// TencentCBSLike models the Tencent cloud block storage traces: weak
// locality, many cold objects, heavy scans.
func TencentCBSLike() Family {
	return Family{
		Name: "tencentcbs", Class: trace.Block,
		Alpha: 0.7, ScanFrac: 0.20, ScanLen: 300, OneHitFrac: 0.20,
		RecencyFrac: 0.20, RecencyScale: 0.0003,
		DefaultObjects: 100000, DefaultRequests: 800000, TableTraces: 4030,
	}
}

// AlibabaLike models the Alibaba block traces: skewed reuse with strong
// periodic working-set shifts.
func AlibabaLike() Family {
	return Family{
		Name: "alibaba", Class: trace.Block,
		Alpha: 1.0, ScanFrac: 0.05, ScanLen: 250, LoopFrac: 0.08, LoopLen: 0,
		OneHitFrac: 0.06, RecencyFrac: 0.30, RecencyScale: 0.0003,
		PhaseEvery: 100000, PhaseShiftFrac: 0.25,
		DefaultObjects: 70000, DefaultRequests: 1000000, TableTraces: 652,
	}
}

// MajorCDNLike models the anonymous major-CDN object traces: strong
// popularity decay and many one-hit wonders (dynamic and short-lived
// content, versioned object names — §4).
func MajorCDNLike() Family {
	return Family{
		Name: "majorcdn", Class: trace.Web,
		Alpha: 0.85, DecayRate: 0.05, OneHitFrac: 0.25,
		DefaultObjects: 80000, DefaultRequests: 1000000, TableTraces: 219,
	}
}

// TencentPhotoLike models the Tencent Photo object traces: decaying
// popularity with moderate one-hit-wonder rates.
func TencentPhotoLike() Family {
	return Family{
		Name: "tencentphoto", Class: trace.Web,
		Alpha: 0.9, DecayRate: 0.03, OneHitFrac: 0.15,
		DefaultObjects: 90000, DefaultRequests: 1200000, TableTraces: 2,
	}
}

// WikiCDNLike models the Wikimedia CDN traces: high skew, mild decay, a
// stable hot set.
func WikiCDNLike() Family {
	return Family{
		Name: "wikicdn", Class: trace.Web,
		Alpha: 1.0, DecayRate: 0.01, OneHitFrac: 0.10,
		DefaultObjects: 60000, DefaultRequests: 1500000, TableTraces: 3,
	}
}

// TwitterLike models the Twitter in-memory KV traces: high skew, high
// request rates, mild decay and some temporal locality.
func TwitterLike() Family {
	return Family{
		Name: "twitter", Class: trace.Web,
		Alpha: 1.0, DecayRate: 0.01, OneHitFrac: 0.03,
		RecencyFrac: 0.35, RecencyScale: 0.0002,
		DefaultObjects: 100000, DefaultRequests: 2000000, TableTraces: 54,
	}
}

// SocialLike models the first-layer social-network KV traces: nearly every
// object is requested more than once (correlated bursts saturate a single
// reference bit) — the pattern under which the paper finds LRU beats
// FIFO-Reinsertion but not 2-bit CLOCK (§3, footnote 3).
func SocialLike() Family {
	return Family{
		Name: "social", Class: trace.Web,
		Alpha: 0.8, OneHitFrac: 0.05,
		RecencyFrac: 0.70, RecencyScale: 0.0001,
		DefaultObjects: 80000, DefaultRequests: 2000000, TableTraces: 219,
	}
}

// Families returns the ten Table-1 dataset families in the paper's order.
func Families() []Family {
	return []Family{
		MSRLike(), FIULike(), CloudPhysicsLike(), MajorCDNLike(), TencentPhotoLike(),
		WikiCDNLike(), TencentCBSLike(), AlibabaLike(), TwitterLike(), SocialLike(),
	}
}

// FamilyByName looks a family up by its Name.
func FamilyByName(name string) (Family, bool) {
	for _, f := range Families() {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

// SmallCacheFrac and LargeCacheFrac are the paper's two evaluated cache
// sizes: 0.1% and 10% of the number of unique objects in the trace (§3).
const (
	SmallCacheFrac = 0.001
	LargeCacheFrac = 0.10
)

// CacheSize returns the cache capacity (in objects) for a trace with the
// given unique-object count at fraction frac, never below 8 objects so tiny
// test traces stay meaningful.
func CacheSize(uniqueObjects int, frac float64) int {
	c := int(math.Round(float64(uniqueObjects) * frac))
	if c < 8 {
		c = 8
	}
	return c
}

// Package sizeaware implements byte-capacity eviction policies — the
// paper's stated future work ("designing size-aware Lazy Promotion and
// Quick Demotion techniques are worth pursuing in the future", §5).
//
// Unlike internal/policy, where the paper's uniform-size assumption makes
// capacities object counts, these policies respect Request.Size and are
// evaluated on both object miss ratio and byte miss ratio. The package
// provides size-aware FIFO, LRU, k-bit CLOCK (size-aware Lazy Promotion),
// GDSF (the classic size-aware web policy, as a baseline), and a
// size-aware QD-LP-FIFO whose probationary FIFO and main CLOCK are both
// byte-bounded and whose ghost tracks as many entries as the main cache
// holds objects.
package sizeaware

import (
	"fmt"

	"repro/internal/trace"
)

// Policy is a byte-capacity eviction policy. Implementations are not safe
// for concurrent use.
type Policy interface {
	// Name identifies the policy.
	Name() string
	// Access processes one request (using r.Size) and reports a hit.
	// Objects larger than the capacity are never admitted.
	Access(r *trace.Request) bool
	// Contains reports data residency.
	Contains(key uint64) bool
	// Len returns the number of resident objects.
	Len() int
	// UsedBytes returns the bytes currently occupied.
	UsedBytes() int64
	// CapacityBytes returns the byte capacity.
	CapacityBytes() int64
}

// Result summarizes a size-aware replay: both object and byte miss ratios
// (web caches care about the latter for bandwidth).
type Result struct {
	Policy     string
	Requests   int64
	Hits       int64
	Bytes      int64
	ByteHits   int64
	FinalBytes int64
	FinalObjs  int
}

// MissRatio returns the object miss ratio.
func (r Result) MissRatio() float64 {
	if r.Requests == 0 {
		return 1
	}
	return float64(r.Requests-r.Hits) / float64(r.Requests)
}

// ByteMissRatio returns the byte miss ratio.
func (r Result) ByteMissRatio() float64 {
	if r.Bytes == 0 {
		return 1
	}
	return float64(r.Bytes-r.ByteHits) / float64(r.Bytes)
}

// Run replays tr against p.
func Run(p Policy, tr *trace.Trace) Result {
	res := Result{Policy: p.Name(), Requests: int64(len(tr.Requests))}
	for i := range tr.Requests {
		r := &tr.Requests[i]
		r.Time = int64(i)
		res.Bytes += int64(r.Size)
		if p.Access(r) {
			res.Hits++
			res.ByteHits += int64(r.Size)
		}
	}
	res.FinalBytes = p.UsedBytes()
	res.FinalObjs = p.Len()
	return res
}

func validateCapacity(capacityBytes int64) error {
	if capacityBytes <= 0 {
		return fmt.Errorf("sizeaware: capacity must be positive, got %d", capacityBytes)
	}
	return nil
}

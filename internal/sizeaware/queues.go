package sizeaware

import (
	"fmt"

	"repro/internal/dlist"
	"repro/internal/trace"
)

type entry struct {
	key  uint64
	size uint32
	freq uint8
}

// FIFO is a byte-bounded first-in-first-out cache.
type FIFO struct {
	name     string
	capacity int64
	used     int64
	byKey    map[uint64]*dlist.Node[entry]
	queue    dlist.List[entry] // front = oldest
	maxFreq  uint8             // 0 for plain FIFO; >0 turns it into k-bit CLOCK
}

// NewFIFO returns a byte-capacity FIFO.
func NewFIFO(capacityBytes int64) (*FIFO, error) {
	if err := validateCapacity(capacityBytes); err != nil {
		return nil, err
	}
	return &FIFO{
		name:     "size-fifo",
		capacity: capacityBytes,
		byKey:    make(map[uint64]*dlist.Node[entry]),
	}, nil
}

// NewClock returns a byte-capacity k-bit CLOCK: size-aware Lazy Promotion.
// Reinsertion is unchanged by object size — a requested object earns a
// second traversal whatever its footprint, so large cold objects leave as
// fast as small ones.
func NewClock(capacityBytes int64, bits int) (*FIFO, error) {
	if err := validateCapacity(capacityBytes); err != nil {
		return nil, err
	}
	if bits < 1 || bits > 6 {
		return nil, fmt.Errorf("sizeaware: clock bits %d outside [1, 6]", bits)
	}
	return &FIFO{
		name:     "size-clock",
		capacity: capacityBytes,
		byKey:    make(map[uint64]*dlist.Node[entry]),
		maxFreq:  uint8(1<<bits - 1),
	}, nil
}

// Name implements Policy.
func (p *FIFO) Name() string { return p.name }

// Len implements Policy.
func (p *FIFO) Len() int { return p.queue.Len() }

// UsedBytes implements Policy.
func (p *FIFO) UsedBytes() int64 { return p.used }

// CapacityBytes implements Policy.
func (p *FIFO) CapacityBytes() int64 { return p.capacity }

// Contains implements Policy.
func (p *FIFO) Contains(key uint64) bool {
	_, ok := p.byKey[key]
	return ok
}

// Access implements Policy.
func (p *FIFO) Access(r *trace.Request) bool {
	if n, ok := p.byKey[r.Key]; ok {
		if n.Value.freq < p.maxFreq {
			n.Value.freq++
		}
		return true
	}
	size := int64(r.Size)
	if size > p.capacity {
		return false // larger than the cache: bypass
	}
	for p.used+size > p.capacity {
		p.evictOne()
	}
	p.byKey[r.Key] = p.queue.PushBack(entry{key: r.Key, size: r.Size})
	p.used += size
	return false
}

func (p *FIFO) evictOne() {
	for {
		oldest := p.queue.Front()
		if oldest.Value.freq > 0 {
			oldest.Value.freq--
			p.queue.MoveToBack(oldest)
			continue
		}
		delete(p.byKey, oldest.Value.key)
		p.used -= int64(oldest.Value.size)
		p.queue.Remove(oldest)
		return
	}
}

// LRU is a byte-bounded least-recently-used cache.
type LRU struct {
	capacity int64
	used     int64
	byKey    map[uint64]*dlist.Node[entry]
	queue    dlist.List[entry] // front = MRU
}

// NewLRU returns a byte-capacity LRU.
func NewLRU(capacityBytes int64) (*LRU, error) {
	if err := validateCapacity(capacityBytes); err != nil {
		return nil, err
	}
	return &LRU{capacity: capacityBytes, byKey: make(map[uint64]*dlist.Node[entry])}, nil
}

// Name implements Policy.
func (p *LRU) Name() string { return "size-lru" }

// Len implements Policy.
func (p *LRU) Len() int { return p.queue.Len() }

// UsedBytes implements Policy.
func (p *LRU) UsedBytes() int64 { return p.used }

// CapacityBytes implements Policy.
func (p *LRU) CapacityBytes() int64 { return p.capacity }

// Contains implements Policy.
func (p *LRU) Contains(key uint64) bool {
	_, ok := p.byKey[key]
	return ok
}

// Access implements Policy.
func (p *LRU) Access(r *trace.Request) bool {
	if n, ok := p.byKey[r.Key]; ok {
		p.queue.MoveToFront(n)
		return true
	}
	size := int64(r.Size)
	if size > p.capacity {
		return false
	}
	for p.used+size > p.capacity {
		victim := p.queue.Back()
		delete(p.byKey, victim.Value.key)
		p.used -= int64(victim.Value.size)
		p.queue.Remove(victim)
	}
	p.byKey[r.Key] = p.queue.PushFront(entry{key: r.Key, size: r.Size})
	p.used += size
	return false
}

package sizeaware

import (
	"fmt"
	"sort"
	"sync"
)

// config collects the functional options New applies before dispatching to
// a policy factory, mirroring concurrent.New: an option that does not
// apply to the chosen policy is an error, not a silent no-op.
type config struct {
	clockBits    int
	clockBitsSet bool
}

// Option configures New. Options validate eagerly: a bad value fails the
// New call rather than being clamped.
type Option func(*config) error

// WithClockBits sets the CLOCK counter width in bits, 1–6 (1 =
// FIFO-Reinsertion, 2 = the paper's choice). It applies to the clock
// policy only; the size-aware qdlp's main ring is fixed at 2 bits.
func WithClockBits(bits int) Option {
	return func(c *config) error {
		if bits < 1 || bits > 6 {
			return fmt.Errorf("sizeaware: clock bits %d outside [1, 6]", bits)
		}
		c.clockBits = bits
		c.clockBitsSet = true
		return nil
	}
}

// Factory constructs one policy from the validated option set.
type Factory func(capacityBytes int64, cfg config) (Policy, error)

var (
	regMu     sync.RWMutex
	factories = map[string]Factory{}
)

// Register adds a named policy factory to the registry. Like
// concurrent.Register it panics on a duplicate name: registration happens
// in init functions where a duplicate is a programming error.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := factories[name]; dup {
		panic(fmt.Sprintf("sizeaware: duplicate policy registration %q", name))
	}
	factories[name] = f
}

// Names returns the registered policy names in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(factories))
	for n := range factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// New constructs the named size-aware policy — the byte-capacity
// counterpart of concurrent.New, sharing its registry shape so simulation
// drivers can select either family by name:
//
//	p, err := sizeaware.New("qdlp", 512<<20)
//	p, err := sizeaware.New("clock", 1<<30, sizeaware.WithClockBits(1))
func New(policy string, capacityBytes int64, opts ...Option) (Policy, error) {
	var cfg config
	cfg.clockBits = 2
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	regMu.RLock()
	f, ok := factories[policy]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sizeaware: unknown policy %q (known: %v)", policy, Names())
	}
	return f(capacityBytes, cfg)
}

// rejectClockBits errors when WithClockBits was set for a policy whose
// counter width is not configurable.
func rejectClockBits(policy string, cfg config) error {
	if cfg.clockBitsSet {
		return fmt.Errorf("sizeaware: policy %q does not take WithClockBits", policy)
	}
	return nil
}

func init() {
	Register("fifo", func(capacityBytes int64, cfg config) (Policy, error) {
		if err := rejectClockBits("fifo", cfg); err != nil {
			return nil, err
		}
		return NewFIFO(capacityBytes)
	})
	Register("clock", func(capacityBytes int64, cfg config) (Policy, error) {
		return NewClock(capacityBytes, cfg.clockBits)
	})
	Register("lru", func(capacityBytes int64, cfg config) (Policy, error) {
		if err := rejectClockBits("lru", cfg); err != nil {
			return nil, err
		}
		return NewLRU(capacityBytes)
	})
	Register("gdsf", func(capacityBytes int64, cfg config) (Policy, error) {
		if err := rejectClockBits("gdsf", cfg); err != nil {
			return nil, err
		}
		return NewGDSF(capacityBytes)
	})
	Register("qdlp", func(capacityBytes int64, cfg config) (Policy, error) {
		if err := rejectClockBits("qdlp", cfg); err != nil {
			return nil, err
		}
		return NewQDLP(capacityBytes)
	})
}

package sizeaware

import (
	"container/heap"

	"repro/internal/trace"
)

// GDSF implements Greedy-Dual-Size-Frequency (Cherkasova, building on Cao
// & Irani's GreedyDual-Size, both in the paper's lineage of size-aware
// web caching). Each object carries priority L + frequency/size, where L
// is the inflation value — the priority of the last evicted object — so
// long-resident objects decay relative to fresh ones. Eviction removes the
// minimum-priority object.
type GDSF struct {
	capacity int64
	used     int64
	inflate  float64
	byKey    map[uint64]*gdsfEntry
	h        gdsfHeap
}

type gdsfEntry struct {
	key      uint64
	size     uint32
	freq     int
	priority float64
	idx      int // heap index, -1 when detached
}

type gdsfHeap []*gdsfEntry

func (h gdsfHeap) Len() int           { return len(h) }
func (h gdsfHeap) Less(i, j int) bool { return h[i].priority < h[j].priority }
func (h gdsfHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *gdsfHeap) Push(x any)        { e := x.(*gdsfEntry); e.idx = len(*h); *h = append(*h, e) }
func (h *gdsfHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	e.idx = -1
	*h = old[:n-1]
	return e
}

// NewGDSF returns a byte-capacity GDSF cache.
func NewGDSF(capacityBytes int64) (*GDSF, error) {
	if err := validateCapacity(capacityBytes); err != nil {
		return nil, err
	}
	return &GDSF{capacity: capacityBytes, byKey: make(map[uint64]*gdsfEntry)}, nil
}

// Name implements Policy.
func (p *GDSF) Name() string { return "gdsf" }

// Len implements Policy.
func (p *GDSF) Len() int { return len(p.byKey) }

// UsedBytes implements Policy.
func (p *GDSF) UsedBytes() int64 { return p.used }

// CapacityBytes implements Policy.
func (p *GDSF) CapacityBytes() int64 { return p.capacity }

// Contains implements Policy.
func (p *GDSF) Contains(key uint64) bool {
	_, ok := p.byKey[key]
	return ok
}

func (p *GDSF) priorityOf(freq int, size uint32) float64 {
	return p.inflate + float64(freq)/float64(size)
}

// Access implements Policy.
func (p *GDSF) Access(r *trace.Request) bool {
	if e, ok := p.byKey[r.Key]; ok {
		e.freq++
		e.priority = p.priorityOf(e.freq, e.size)
		heap.Fix(&p.h, e.idx)
		return true
	}
	size := int64(r.Size)
	if size > p.capacity {
		return false
	}
	for p.used+size > p.capacity {
		victim := heap.Pop(&p.h).(*gdsfEntry)
		p.inflate = victim.priority // inflation: future objects outrank the dead
		delete(p.byKey, victim.key)
		p.used -= int64(victim.size)
	}
	e := &gdsfEntry{key: r.Key, size: r.Size, freq: 1}
	e.priority = p.priorityOf(1, r.Size)
	heap.Push(&p.h, e)
	p.byKey[r.Key] = e
	p.used += size
	return false
}

package sizeaware

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

func sizedTrace(seed int64) *trace.Trace {
	tr := workload.MajorCDNLike().Generate(seed, 5000, 100000)
	workload.AssignSizes(tr, 4096)
	return tr
}

// mustPolicy panics on a constructor error — the helper every test with a
// known-good capacity uses (its multi-value argument must be the call's
// only one, so no *testing.T parameter).
func mustPolicy[P Policy](p P, err error) P {
	if err != nil {
		panic(err)
	}
	return p
}

func policies(t *testing.T, capacity int64) []Policy {
	t.Helper()
	out := make([]Policy, 0, len(Names()))
	for _, name := range Names() {
		p, err := New(name, capacity)
		if err != nil {
			t.Fatalf("New(%q, %d): %v", name, capacity, err)
		}
		out = append(out, p)
	}
	return out
}

// Shared contract: byte usage never exceeds capacity, hits iff resident,
// per-key sizes consistent.
func TestContract(t *testing.T) {
	tr := sizedTrace(1)
	for _, p := range policies(t, 1<<22) {
		t.Run(p.Name(), func(t *testing.T) {
			for i := range tr.Requests {
				r := &tr.Requests[i]
				before := p.Contains(r.Key)
				hit := p.Access(r)
				if hit != before {
					t.Fatalf("req %d: hit=%v resident-before=%v", i, hit, before)
				}
				if p.UsedBytes() > p.CapacityBytes() {
					t.Fatalf("req %d: used %d > capacity %d", i, p.UsedBytes(), p.CapacityBytes())
				}
				if p.UsedBytes() < 0 || p.Len() < 0 {
					t.Fatalf("req %d: negative accounting", i)
				}
			}
			if p.Len() == 0 {
				t.Fatal("cache empty after replay")
			}
		})
	}
}

func TestOversizedObjectBypassed(t *testing.T) {
	for _, p := range policies(t, 1000) {
		r := trace.Request{Key: 1, Size: 5000}
		if p.Access(&r) {
			t.Fatalf("%s: hit on first access", p.Name())
		}
		if p.Contains(1) || p.UsedBytes() != 0 {
			t.Fatalf("%s: oversized object admitted", p.Name())
		}
	}
}

func TestEvictionFreesEnoughBytes(t *testing.T) {
	p := mustPolicy(NewLRU(1000))
	reqs := []trace.Request{
		{Key: 1, Size: 400}, {Key: 2, Size: 400},
		{Key: 3, Size: 900}, // must evict both
	}
	for i := range reqs {
		p.Access(&reqs[i])
	}
	if p.Contains(1) || p.Contains(2) || !p.Contains(3) {
		t.Fatal("multi-eviction for a large insert failed")
	}
	if p.UsedBytes() != 900 {
		t.Fatalf("used = %d", p.UsedBytes())
	}
}

// Size-aware CLOCK gives requested objects a second chance regardless of
// size.
func TestClockSizeAwareReinsertion(t *testing.T) {
	p := mustPolicy(NewClock(1000, 1))
	reqs := []trace.Request{
		{Key: 1, Size: 400}, {Key: 2, Size: 400},
		{Key: 1, Size: 400},            // hit: sets freq
		{Key: 3, Size: 600, Time: 100}, // forces eviction
	}
	for i := range reqs {
		p.Access(&reqs[i])
	}
	if !p.Contains(1) {
		t.Fatal("requested object not reinserted")
	}
	if p.Contains(2) {
		t.Fatal("unrequested object survived over requested one")
	}
}

// GDSF prefers evicting large objects at equal frequency.
func TestGDSFPrefersEvictingLarge(t *testing.T) {
	p := mustPolicy(NewGDSF(1000))
	reqs := []trace.Request{
		{Key: 1, Size: 100}, {Key: 2, Size: 800},
		{Key: 3, Size: 500},
	}
	for i := range reqs {
		p.Access(&reqs[i])
	}
	if !p.Contains(1) {
		t.Fatal("small object evicted before large one")
	}
	if p.Contains(2) {
		t.Fatal("large cold object survived")
	}
}

// The QDLP probation filters one-hit wonders before they reach main.
func TestQDLPFiltersOneHitWonders(t *testing.T) {
	p := mustPolicy(NewQDLP(1 << 16))
	for i := 0; i < 2000; i++ {
		r := trace.Request{Key: uint64(i), Size: 256, Time: int64(i)}
		p.Access(&r)
	}
	if p.main.Len() != 0 {
		t.Fatalf("%d one-hit wonders reached the main cache", p.main.Len())
	}
}

// Ghost readmission works in the size-aware wrapper too.
func TestQDLPGhostReadmission(t *testing.T) {
	p := mustPolicy(NewQDLP(10000)) // probation 1000 bytes
	reqs := []trace.Request{
		{Key: 1, Size: 400}, {Key: 2, Size: 400},
		{Key: 3, Size: 400}, {Key: 4, Size: 400}, // push 1,2 into ghost
		{Key: 1, Size: 400}, // ghost hit → main
	}
	for i := range reqs {
		reqs[i].Time = int64(i)
		p.Access(&reqs[i])
	}
	if !p.main.Contains(1) {
		t.Fatal("ghost hit not admitted into main")
	}
}

// On one-hit-heavy sized web workloads, size-aware QD-LP-FIFO should beat
// size-aware LRU on byte miss ratio, and GDSF should beat plain FIFO.
func TestSizedWorkloadOrdering(t *testing.T) {
	capacity := int64(5000 * 4096 / 10) // ~10% of the footprint
	run := func(p Policy) Result {
		return Run(p, sizedTrace(3))
	}
	lru := run(mustPolicy(NewLRU(capacity)))
	qdlp := run(mustPolicy(NewQDLP(capacity)))
	fifo := run(mustPolicy(NewFIFO(capacity)))
	gdsf := run(mustPolicy(NewGDSF(capacity)))
	if qdlp.ByteMissRatio() >= lru.ByteMissRatio() {
		t.Errorf("size-qd-lp-fifo (%.4f) not better than size-lru (%.4f) on byte miss ratio",
			qdlp.ByteMissRatio(), lru.ByteMissRatio())
	}
	if gdsf.MissRatio() >= fifo.MissRatio() {
		t.Errorf("gdsf (%.4f) not better than fifo (%.4f) on object miss ratio",
			gdsf.MissRatio(), fifo.MissRatio())
	}
}

func TestBadCapacityErrors(t *testing.T) {
	for name, f := range map[string]func() error{
		"fifo":  func() error { _, err := NewFIFO(0); return err },
		"clock": func() error { _, err := NewClock(-1, 2); return err },
		"bits":  func() error { _, err := NewClock(100, 0); return err },
		"lru":   func() error { _, err := NewLRU(0); return err },
		"gdsf":  func() error { _, err := NewGDSF(0); return err },
		"qdlp":  func() error { _, err := NewQDLP(0); return err },
	} {
		if f() == nil {
			t.Errorf("%s: bad argument did not error", name)
		}
	}
}

// TestNewRegistry pins the registry surface: every registered name
// constructs, unknown names and irrelevant options error, and clock bits
// flow through.
func TestNewRegistry(t *testing.T) {
	want := []string{"clock", "fifo", "gdsf", "lru", "qdlp"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		p, err := New(name, 1<<20)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.CapacityBytes() != 1<<20 {
			t.Errorf("New(%q): capacity %d, want %d", name, p.CapacityBytes(), 1<<20)
		}
	}
	if _, err := New("nope", 1<<20); err == nil {
		t.Error("unknown policy did not error")
	}
	if _, err := New("clock", 0); err == nil {
		t.Error("zero capacity did not error")
	}
	if _, err := New("lru", 1<<20, WithClockBits(2)); err == nil {
		t.Error("irrelevant WithClockBits did not error")
	}
	if _, err := New("clock", 1<<20, WithClockBits(7)); err == nil {
		t.Error("out-of-range clock bits did not error")
	}
	p, err := New("clock", 1<<20, WithClockBits(1))
	if err != nil {
		t.Fatalf("New(clock, bits=1): %v", err)
	}
	if f, ok := p.(*FIFO); !ok || f.maxFreq != 1 {
		t.Errorf("WithClockBits(1) not applied: %+v", p)
	}
}

func TestAssignSizesDeterministicPerKey(t *testing.T) {
	tr := workload.TwitterLike().Generate(1, 1000, 20000)
	workload.AssignSizes(tr, 4096)
	sizes := map[uint64]uint32{}
	var total int64
	for _, r := range tr.Requests {
		if s, ok := sizes[r.Key]; ok && s != r.Size {
			t.Fatalf("key %d has two sizes: %d and %d", r.Key, s, r.Size)
		}
		sizes[r.Key] = r.Size
		if r.Size < 64 {
			t.Fatalf("size %d below floor", r.Size)
		}
		total += int64(r.Size)
	}
	mean := float64(total) / float64(len(tr.Requests))
	// Log-normal with sigma 1.2: mean ≈ median × e^(σ²/2) ≈ 2× median.
	if mean < 2048 || mean > 32768 {
		t.Fatalf("implausible mean size %.0f", mean)
	}
}

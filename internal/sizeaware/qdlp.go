package sizeaware

import (
	"repro/internal/dlist"
	"repro/internal/ghost"
	"repro/internal/trace"
)

// QDLP is the size-aware QD-LP-FIFO sketched by the paper's future-work
// paragraph: the probationary FIFO holds 10% of the cache **bytes**, the
// main cache is a byte-bounded 2-bit CLOCK, and the ghost remembers as
// many keys as the main cache holds objects (tracked dynamically, since a
// byte capacity has no fixed object count).
//
// Size-aware Quick Demotion inherits a pleasant property: a large
// unrequested object occupies the probationary queue for *fewer* insertions
// than a small one (it is a larger share of the queue), so the filter is
// naturally harsher on big one-hit wonders — the objects that waste the
// most bytes.
type QDLP struct {
	capacity  int64
	probCap   int64
	probUsed  int64
	probByKey map[uint64]*dlist.Node[probEntry]
	prob      dlist.List[probEntry] // front = oldest

	main  *FIFO // size-aware 2-bit CLOCK
	ghost *ghost.Queue
}

type probEntry struct {
	key      uint64
	size     uint32
	accessed bool
}

// NewQDLP returns a size-aware QD-LP-FIFO with the paper's 10% probation
// share.
func NewQDLP(capacityBytes int64) (*QDLP, error) {
	if err := validateCapacity(capacityBytes); err != nil {
		return nil, err
	}
	probCap := capacityBytes / 10
	if probCap < 1 {
		probCap = 1
	}
	mainCap := capacityBytes - probCap
	if mainCap < 1 {
		mainCap = 1
	}
	main, err := NewClock(mainCap, 2)
	if err != nil {
		return nil, err
	}
	return &QDLP{
		capacity:  capacityBytes,
		probCap:   probCap,
		probByKey: make(map[uint64]*dlist.Node[probEntry]),
		main:      main,
		// Upper-bound the ghost generously; the effective bound is
		// enforced dynamically against the main cache's population.
		ghost: ghost.New(1 << 20),
	}, nil
}

// Name implements Policy.
func (p *QDLP) Name() string { return "size-qd-lp-fifo" }

// Len implements Policy.
func (p *QDLP) Len() int { return p.prob.Len() + p.main.Len() }

// UsedBytes implements Policy.
func (p *QDLP) UsedBytes() int64 { return p.probUsed + p.main.UsedBytes() }

// CapacityBytes implements Policy.
func (p *QDLP) CapacityBytes() int64 { return p.capacity }

// Contains implements Policy.
func (p *QDLP) Contains(key uint64) bool {
	if _, ok := p.probByKey[key]; ok {
		return true
	}
	return p.main.Contains(key)
}

// Access implements Policy.
func (p *QDLP) Access(r *trace.Request) bool {
	if n, ok := p.probByKey[r.Key]; ok {
		n.Value.accessed = true
		return true
	}
	if p.main.Contains(r.Key) {
		return p.main.Access(r)
	}
	size := int64(r.Size)
	if size > p.probCap && size > p.main.CapacityBytes() {
		return false // cannot fit anywhere
	}
	if p.ghost.Contains(r.Key) {
		p.ghost.Remove(r.Key)
		p.main.Access(r)
		return false
	}
	if size > p.probCap {
		// Too large for the probationary queue: insert into main directly
		// rather than flushing the whole probation for one object.
		p.main.Access(r)
		return false
	}
	for p.probUsed+size > p.probCap {
		p.evictProbation(r.Time)
	}
	p.probByKey[r.Key] = p.prob.PushBack(probEntry{key: r.Key, size: r.Size})
	p.probUsed += size
	return false
}

func (p *QDLP) evictProbation(now int64) {
	oldest := p.prob.Front()
	e := oldest.Value
	delete(p.probByKey, e.key)
	p.prob.Remove(oldest)
	p.probUsed -= int64(e.size)
	if e.accessed {
		req := trace.Request{Key: e.key, Size: e.size, Time: now}
		p.main.Access(&req)
		return
	}
	p.ghost.Add(e.key)
	// Dynamic ghost bound: as many entries as the main cache holds
	// objects (the paper's sizing, adapted to byte capacities).
	limit := p.main.Len()
	if limit < 16 {
		limit = 16
	}
	for p.ghost.Len() > limit {
		if k, ok := p.ghost.Oldest(); ok {
			p.ghost.Remove(k)
		}
	}
}

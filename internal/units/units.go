// Package units parses and formats human-readable byte sizes for the
// byte-capacity flags (-max-bytes, -valuesize): "512mib", "4gib",
// "65536". All suffixes are binary (powers of 1024) regardless of the
// "i" — a cache capacity flag has no use for the 2.4% decimal/binary
// gap, and treating "kb" as 1000 would only invite off-by-24 surprises.
package units

import (
	"fmt"
	"strconv"
	"strings"
)

const (
	kib = int64(1) << 10
	mib = int64(1) << 20
	gib = int64(1) << 30
	tib = int64(1) << 40
)

var suffixes = map[string]int64{
	"":    1,
	"b":   1,
	"k":   kib,
	"kb":  kib,
	"kib": kib,
	"m":   mib,
	"mb":  mib,
	"mib": mib,
	"g":   gib,
	"gb":  gib,
	"gib": gib,
	"t":   tib,
	"tb":  tib,
	"tib": tib,
}

// ParseBytes parses a byte size: an integer with an optional
// case-insensitive binary suffix (b, k/kb/kib, m/mb/mib, g/gb/gib,
// t/tb/tib). The value must be non-negative and fit in int64.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	if t == "" {
		return 0, fmt.Errorf("units: empty byte size")
	}
	digits := t
	suffix := ""
	for i, r := range t {
		if r < '0' || r > '9' {
			digits, suffix = t[:i], t[i:]
			break
		}
	}
	mult, ok := suffixes[suffix]
	if !ok {
		return 0, fmt.Errorf("units: %q has unknown size suffix %q (known: b, kib, mib, gib, tib)", s, suffix)
	}
	if digits == "" {
		return 0, fmt.Errorf("units: %q has no digits", s)
	}
	n, err := strconv.ParseInt(digits, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("units: %q: %v", s, err)
	}
	if n != 0 && n > (int64(1)<<62)/mult {
		return 0, fmt.Errorf("units: %q overflows", s)
	}
	return n * mult, nil
}

// FormatBytes renders n with the largest binary suffix that divides it
// exactly, so the output round-trips through ParseBytes losslessly
// ("536870912" → "512mib", "1000" → "1000").
func FormatBytes(n int64) string {
	if n < 0 {
		return strconv.FormatInt(n, 10)
	}
	for _, u := range []struct {
		mult   int64
		suffix string
	}{{tib, "tib"}, {gib, "gib"}, {mib, "mib"}, {kib, "kib"}} {
		if n >= u.mult && n%u.mult == 0 {
			return strconv.FormatInt(n/u.mult, 10) + u.suffix
		}
	}
	return strconv.FormatInt(n, 10)
}

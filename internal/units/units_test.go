package units

import (
	"strconv"
	"testing"
)

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in      string
		want    int64
		wantErr bool
	}{
		{"0", 0, false},
		{"65536", 65536, false},
		{"1b", 1, false},
		{"512k", 512 << 10, false},
		{"512kb", 512 << 10, false},
		{"512kib", 512 << 10, false},
		{"512mib", 512 << 20, false},
		{"512MiB", 512 << 20, false}, // case-insensitive
		{"4gib", 4 << 30, false},
		{"4GB", 4 << 30, false}, // decimal suffixes are binary too
		{"2tib", 2 << 40, false},
		{" 64mib ", 64 << 20, false}, // surrounding space tolerated
		{"", 0, true},
		{"mib", 0, true},         // no digits
		{"12qib", 0, true},       // unknown suffix
		{"1.5gib", 0, true},      // fractions not supported
		{"-1kib", 0, true},       // negative
		{"12 mib", 0, true},      // interior space
		{"99999999tib", 0, true}, // overflow
	}
	for _, tc := range cases {
		got, err := ParseBytes(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseBytes(%q) = %d, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestFormatBytesRoundTrips(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0"},
		{1000, "1000"},
		{1 << 10, "1kib"},
		{512 << 20, "512mib"},
		{4 << 30, "4gib"},
		{(1 << 30) + 1, strconv.FormatInt((1<<30)+1, 10)},
	}
	for _, tc := range cases {
		got := FormatBytes(tc.in)
		if got != tc.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tc.in, got, tc.want)
		}
		back, err := ParseBytes(got)
		if err != nil || back != tc.in {
			t.Errorf("round trip %d → %q → %d (%v)", tc.in, got, back, err)
		}
	}
}

package overload

import (
	"math"
	"sync"
	"time"
)

// DetectorConfig configures a Detector.
type DetectorConfig struct {
	// EjectFailures is the consecutive probe-failure streak that marks a
	// node unhealthy. Default 3.
	EjectFailures int
	// ReadmitSuccesses is the consecutive probe-success streak that marks
	// a recovered node healthy again. Default 3.
	ReadmitSuccesses int
	// PhiThreshold is the suspicion level above which a node is marked
	// unhealthy even before the failure streak completes. Default 8
	// (odds of a false positive around 1e-8 under the model).
	PhiThreshold float64
}

// Detector is a phi-accrual-style failure detector fed by periodic health
// probes. It models inter-success intervals as exponential with an EWMA
// mean, so suspicion phi(t) = elapsed/(mean·ln10) — the -log10 of the
// probability that a healthy node would stay silent this long. A node is
// ejected on a failure streak or a phi breach, and re-admitted only after
// a success streak, which keeps a flapping node from oscillating in the
// ring.
//
// A Detector is only ever driven by its node's single prober goroutine,
// but Phi and Healthy are also read from admin/metrics collectors, so the
// state sits behind a mutex.
type Detector struct {
	mu            sync.Mutex
	cfg           DetectorConfig
	ewmaInterval  float64 // seconds between successful probes
	lastSuccess   time.Time
	failStreak    int
	successStreak int
	healthy       bool
}

// NewDetector returns a Detector that considers the node healthy until
// probes prove otherwise.
func NewDetector(cfg DetectorConfig) *Detector {
	if cfg.EjectFailures <= 0 {
		cfg.EjectFailures = 3
	}
	if cfg.ReadmitSuccesses <= 0 {
		cfg.ReadmitSuccesses = 3
	}
	if cfg.PhiThreshold <= 0 {
		cfg.PhiThreshold = 8
	}
	return &Detector{cfg: cfg, healthy: true}
}

// ObserveSuccess records a successful probe at now and reports whether
// this observation re-admitted a previously unhealthy node.
func (d *Detector) ObserveSuccess(now time.Time) (readmitted bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.lastSuccess.IsZero() {
		iv := now.Sub(d.lastSuccess).Seconds()
		if d.ewmaInterval == 0 {
			d.ewmaInterval = iv
		} else {
			d.ewmaInterval += (iv - d.ewmaInterval) / 8
		}
	}
	d.lastSuccess = now
	d.failStreak = 0
	d.successStreak++
	if !d.healthy && d.successStreak >= d.cfg.ReadmitSuccesses {
		d.healthy = true
		return true
	}
	return false
}

// ObserveFailure records a failed probe at now and reports whether this
// observation ejected a previously healthy node.
func (d *Detector) ObserveFailure(now time.Time) (ejected bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.successStreak = 0
	d.failStreak++
	if d.healthy && (d.failStreak >= d.cfg.EjectFailures || d.phiLocked(now) > d.cfg.PhiThreshold) {
		d.healthy = false
		return true
	}
	return false
}

// Phi returns the current suspicion level at now: 0 with no history, and
// growing linearly with silence since the last successful probe.
func (d *Detector) Phi(now time.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.phiLocked(now)
}

func (d *Detector) phiLocked(now time.Time) float64 {
	if d.lastSuccess.IsZero() || d.ewmaInterval <= 0 {
		return 0
	}
	elapsed := now.Sub(d.lastSuccess).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return elapsed / (d.ewmaInterval * math.Ln10)
}

// Reset restores the detector to its initial healthy state with no probe
// history. The router uses it when an operator explicitly re-adds a node:
// an intentional rejoin starts with a clean slate rather than inheriting
// suspicion from a past life.
func (d *Detector) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ewmaInterval = 0
	d.lastSuccess = time.Time{}
	d.failStreak = 0
	d.successStreak = 0
	d.healthy = true
}

// Healthy reports whether the node is currently considered healthy.
func (d *Detector) Healthy() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.healthy
}

package overload

import (
	"sync/atomic"
	"time"
)

// BreakerState is a circuit breaker's position. The numeric values are
// stable and exported as the cache_breaker_state gauge.
type BreakerState int32

const (
	BreakerClosed   BreakerState = iota // traffic flows normally
	BreakerOpen                         // all traffic refused until cooldown
	BreakerHalfOpen                     // one probe in flight decides reopen vs close
)

// String returns the stable label used on admin surfaces.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	default:
		return "unknown"
	}
}

// BreakerConfig configures a Breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the breaker.
	// Default 5.
	Threshold int
	// Cooldown is how long an open breaker refuses traffic before letting
	// a single probe through, and how often half-open re-probes if the
	// previous probe never reported back. Default 1s.
	Cooldown time.Duration
}

// Breaker is a lock-free closed→open→half-open circuit breaker. Allow is
// called on the forwarding hot path, so state lives in atomics; the
// transitions race benignly (at worst one extra probe slips through).
// A nil *Breaker is always closed.
type Breaker struct {
	threshold int64
	cooldown  int64 // ns

	state      atomic.Int32
	failStreak atomic.Int64
	openedAt   atomic.Int64 // UnixNano of last open transition
	lastProbe  atomic.Int64 // UnixNano of last half-open probe grant
	opens      atomic.Int64
}

// NewBreaker returns a closed Breaker with defaults applied.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Second
	}
	return &Breaker{threshold: int64(cfg.Threshold), cooldown: cfg.Cooldown.Nanoseconds()}
}

// Allow reports whether a request may proceed. Open breakers refuse
// everything until the cooldown elapses, then admit exactly one probe by
// moving to half-open; a half-open breaker re-grants a probe every
// cooldown in case the previous one hung.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	switch BreakerState(b.state.Load()) {
	case BreakerClosed:
		return true
	case BreakerOpen:
		now := time.Now().UnixNano()
		if now-b.openedAt.Load() < b.cooldown {
			return false
		}
		if b.state.CompareAndSwap(int32(BreakerOpen), int32(BreakerHalfOpen)) {
			b.lastProbe.Store(now)
			return true
		}
		return false
	default: // half-open
		now := time.Now().UnixNano()
		last := b.lastProbe.Load()
		if now-last >= b.cooldown && b.lastProbe.CompareAndSwap(last, now) {
			return true
		}
		return false
	}
}

// Success records a healthy response and closes the breaker.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.failStreak.Store(0)
	b.state.Store(int32(BreakerClosed))
}

// Failure records a transport failure. A half-open probe failure reopens
// immediately; a closed breaker opens once the consecutive-failure streak
// reaches the threshold.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	streak := b.failStreak.Add(1)
	switch BreakerState(b.state.Load()) {
	case BreakerHalfOpen:
		b.reopen()
	case BreakerClosed:
		if streak >= b.threshold {
			b.reopen()
		}
	}
}

func (b *Breaker) reopen() {
	b.openedAt.Store(time.Now().UnixNano())
	if b.state.Swap(int32(BreakerOpen)) != int32(BreakerOpen) {
		b.opens.Add(1)
	}
}

// State returns the breaker's current position. A nil breaker reads as
// closed.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	return BreakerState(b.state.Load())
}

// Opens returns how many times the breaker has transitioned to open.
func (b *Breaker) Opens() int64 {
	if b == nil {
		return 0
	}
	return b.opens.Load()
}

package overload

import (
	"sync"
	"testing"
	"time"
)

func TestLimiterAdmitsUpToLimitAndQueues(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxLimit: 2, MaxPending: 1, Target: 200 * time.Millisecond})
	if r := l.Acquire(false); r != ShedNone {
		t.Fatalf("first acquire shed: %v", r)
	}
	if r := l.Acquire(false); r != ShedNone {
		t.Fatalf("second acquire shed: %v", r)
	}

	// Third acquire must queue; hand it a slot via Release.
	admitted := make(chan ShedReason, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		admitted <- l.Acquire(false)
	}()
	waitFor(t, func() bool { return l.Snapshot().Pending == 1 })

	// Fourth arrival finds the queue full.
	if r := l.Acquire(false); r != ShedQueueFull {
		t.Fatalf("expected queue_full, got %v", r)
	}
	if n := l.ShedCount(ShedQueueFull); n != 1 {
		t.Fatalf("queue_full shed count = %d, want 1", n)
	}

	l.Release(time.Millisecond)
	wg.Wait()
	if r := <-admitted; r != ShedNone {
		t.Fatalf("queued acquire shed: %v", r)
	}
	snap := l.Snapshot()
	if snap.Inflight != 2 || snap.Pending != 0 {
		t.Fatalf("snapshot after handoff: %+v", snap)
	}
}

func TestLimiterTimeoutInQueue(t *testing.T) {
	// Target 20ms gives a 10ms wait budget; nobody releases, so the
	// queued request must time out.
	l := NewLimiter(LimiterConfig{MaxLimit: 1, MaxPending: 4, Target: 20 * time.Millisecond})
	if r := l.Acquire(false); r != ShedNone {
		t.Fatalf("first acquire shed: %v", r)
	}
	if r := l.Acquire(false); r != ShedTimeout {
		t.Fatalf("expected timeout, got %v", r)
	}
	if got := l.Snapshot().Pending; got != 0 {
		t.Fatalf("pending after timeout = %d, want 0", got)
	}
}

func TestLimiterAIMDAdaptation(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxLimit: 100, Target: time.Millisecond})
	if got := l.Snapshot().Limit; got != 100 {
		t.Fatalf("starting limit = %d, want 100", got)
	}
	// A breached epoch (all samples over target) shrinks the limit.
	for i := 0; i < 50; i++ {
		l.inflight.Add(1)
		l.Release(10 * time.Millisecond)
	}
	l.Tick()
	if got := l.Snapshot().Limit; got != 80 {
		t.Fatalf("limit after breach = %d, want 80", got)
	}
	// Clean epochs grow it back, capped at MaxLimit.
	for epoch := 0; epoch < 10; epoch++ {
		for i := 0; i < 50; i++ {
			l.inflight.Add(1)
			l.Release(100 * time.Microsecond)
		}
		l.Tick()
	}
	if got := l.Snapshot().Limit; got != 100 {
		t.Fatalf("limit after recovery = %d, want 100", got)
	}
}

func TestLimiterBrownoutLevels(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxLimit: 100, Target: time.Millisecond})
	breach := func() {
		l.inflight.Add(1)
		l.Release(10 * time.Millisecond)
		l.Tick()
	}
	breach()
	if lvl := l.Level(); lvl != 0 {
		t.Fatalf("level after 1 breach = %d, want 0", lvl)
	}
	breach()
	if lvl := l.Level(); lvl != 1 {
		t.Fatalf("level after 2 breaches = %d, want 1", lvl)
	}
	if r := l.Acquire(true); r != ShedWrite {
		t.Fatalf("write at level 1: got %v, want write_brownout", r)
	}
	if r := l.Acquire(false); r != ShedNone {
		t.Fatalf("read at level 1 shed: %v", r)
	}
	l.Release(time.Microsecond)
	breach()
	breach()
	if lvl := l.Level(); lvl != 2 {
		t.Fatalf("level after 4 breaches = %d, want 2", lvl)
	}
	if r := l.Acquire(false); r != ShedRead {
		t.Fatalf("read at level 2: got %v, want read_brownout", r)
	}
	// Clean epochs decay the streak and lift the brownout.
	for i := 0; i < 4; i++ {
		l.inflight.Add(1)
		l.Release(time.Microsecond)
		l.Tick()
	}
	if lvl := l.Level(); lvl != 0 {
		t.Fatalf("level after recovery = %d, want 0", lvl)
	}
}

func TestLimiterNilIsNoop(t *testing.T) {
	var l *Limiter
	if r := l.Acquire(true); r != ShedNone {
		t.Fatalf("nil limiter shed: %v", r)
	}
	l.Release(time.Second)
	if lvl := l.Level(); lvl != 0 {
		t.Fatalf("nil limiter level = %d", lvl)
	}
	if s := l.Snapshot(); s.Limit != 0 {
		t.Fatalf("nil limiter snapshot: %+v", s)
	}
}

func TestRetryBudget(t *testing.T) {
	b := NewRetryBudget(0.5, 2)
	if !b.Withdraw() || !b.Withdraw() {
		t.Fatal("full budget refused a withdrawal")
	}
	if b.Withdraw() {
		t.Fatal("empty budget allowed a withdrawal")
	}
	if got := b.Exhausted(); got != 1 {
		t.Fatalf("exhausted = %d, want 1", got)
	}
	b.Deposit()
	b.Deposit()
	if !b.Withdraw() {
		t.Fatal("budget refused after deposits refilled a token")
	}
	for i := 0; i < 100; i++ {
		b.Deposit()
	}
	if got := b.Tokens(); got > 2 {
		t.Fatalf("tokens = %v, want capped at 2", got)
	}
}

func TestRetryBudgetNilIsUnlimited(t *testing.T) {
	var b *RetryBudget
	if !b.Withdraw() {
		t.Fatal("nil budget refused a withdrawal")
	}
	b.Deposit()
	if b.Exhausted() != 0 {
		t.Fatal("nil budget counted exhaustion")
	}
}

func TestBreakerTransitions(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 2, Cooldown: 20 * time.Millisecond})
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("new breaker not closed")
	}
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("opened before threshold")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("did not open at threshold")
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request inside cooldown")
	}
	time.Sleep(25 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("no probe after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after probe grant = %v, want half_open", b.State())
	}
	if b.Allow() {
		t.Fatal("second probe granted immediately in half-open")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("half-open probe failure did not reopen")
	}
	if got := b.Opens(); got != 2 {
		t.Fatalf("opens = %d, want 2", got)
	}
	time.Sleep(25 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("no probe after second cooldown")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("half-open probe success did not close")
	}
}

func TestBreakerNilAlwaysAllows(t *testing.T) {
	var b *Breaker
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("nil breaker not closed")
	}
	b.Success()
	b.Failure()
}

func TestDetectorEjectAndReadmit(t *testing.T) {
	d := NewDetector(DetectorConfig{EjectFailures: 3, ReadmitSuccesses: 2})
	now := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		d.ObserveSuccess(now)
		now = now.Add(100 * time.Millisecond)
	}
	if !d.Healthy() {
		t.Fatal("healthy node reported unhealthy")
	}
	if d.ObserveFailure(now) {
		t.Fatal("ejected on first failure")
	}
	now = now.Add(100 * time.Millisecond)
	if d.ObserveFailure(now) {
		t.Fatal("ejected on second failure")
	}
	now = now.Add(100 * time.Millisecond)
	if !d.ObserveFailure(now) {
		t.Fatal("not ejected on third failure")
	}
	if d.Healthy() {
		t.Fatal("still healthy after ejection")
	}
	// Repeated failures don't re-report the transition.
	now = now.Add(100 * time.Millisecond)
	if d.ObserveFailure(now) {
		t.Fatal("re-ejected while already unhealthy")
	}
	// Recovery: two successes in a row re-admit.
	now = now.Add(100 * time.Millisecond)
	if d.ObserveSuccess(now) {
		t.Fatal("readmitted on first success")
	}
	now = now.Add(100 * time.Millisecond)
	if !d.ObserveSuccess(now) {
		t.Fatal("not readmitted on second success")
	}
	if !d.Healthy() {
		t.Fatal("unhealthy after readmission")
	}
}

func TestDetectorPhiGrowsWithSilence(t *testing.T) {
	d := NewDetector(DetectorConfig{PhiThreshold: 4})
	now := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		d.ObserveSuccess(now)
		now = now.Add(100 * time.Millisecond)
	}
	shortly := d.Phi(now)
	later := d.Phi(now.Add(5 * time.Second))
	if later <= shortly {
		t.Fatalf("phi did not grow with silence: %v then %v", shortly, later)
	}
	// A long silence breaches the phi threshold even before the failure
	// streak would.
	if !d.ObserveFailure(now.Add(10 * time.Second)) {
		t.Fatal("phi breach did not eject")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}

package overload

import (
	"sync"
	"sync/atomic"
)

// RetryBudget is a token bucket that bounds retries as a fraction of
// normal traffic (the Finagle "retry budget" scheme): every completed
// operation deposits ratio tokens, every retry withdraws one whole token.
// Under healthy traffic the bucket stays full and retries pass; during an
// outage the deposit stream dries up, the bucket drains, and retries stop
// amplifying the overload.
//
// All methods are nil-safe: a nil *RetryBudget behaves as an unlimited
// budget so callers can leave the feature off.
type RetryBudget struct {
	mu        sync.Mutex
	tokens    float64
	ratio     float64
	cap       float64
	exhausted atomic.Int64
}

// NewRetryBudget returns a budget that earns ratio tokens per deposit and
// holds at most capacity tokens. The bucket starts full so cold-start
// retries are not starved. Ratio defaults to 0.1 (one retry per ten
// operations) and capacity to 10 when non-positive.
func NewRetryBudget(ratio float64, capacity int) *RetryBudget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if capacity <= 0 {
		capacity = 10
	}
	return &RetryBudget{tokens: float64(capacity), ratio: ratio, cap: float64(capacity)}
}

// Deposit credits the budget for one completed operation.
func (b *RetryBudget) Deposit() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens = min(b.tokens+b.ratio, b.cap)
	b.mu.Unlock()
}

// Withdraw spends one token to pay for a retry. It reports false — and
// counts an exhaustion — when the budget cannot cover it.
func (b *RetryBudget) Withdraw() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	if b.tokens >= 1 {
		b.tokens--
		b.mu.Unlock()
		return true
	}
	b.mu.Unlock()
	b.exhausted.Add(1)
	return false
}

// Exhausted returns how many retries were refused for lack of tokens.
func (b *RetryBudget) Exhausted() int64 {
	if b == nil {
		return 0
	}
	return b.exhausted.Load()
}

// Tokens returns the current token balance.
func (b *RetryBudget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// Package overload implements the building blocks of the overload control
// plane: an adaptive concurrency limiter with a bounded wait queue and
// brownout pressure levels (server side), token-bucket retry budgets and
// circuit breakers (client side), and a phi-accrual failure detector
// (cluster side).
//
// The pieces are deliberately independent: the server embeds only the
// Limiter, the load client only the RetryBudget, and the cluster Router
// composes Breaker and Detector per backend. All types are safe for
// concurrent use and all client-side types are nil-safe so callers can
// leave the feature off by simply not constructing it.
package overload

import (
	"sync"
	"sync/atomic"
	"time"
)

// ShedReason classifies why the limiter refused a request. ShedNone means
// the request was admitted.
type ShedReason uint8

const (
	ShedNone      ShedReason = iota
	ShedQueueFull            // wait queue already holds MaxPending requests
	ShedDeadline             // estimated queue wait exceeds the latency budget
	ShedTimeout              // queued, but no slot freed within the wait budget
	ShedWrite                // brownout level >= 1: writes are dropped first
	ShedRead                 // brownout level >= 2: reads answer miss-fast

	numShedReasons
)

// String returns the stable label used for metrics and stats lines.
func (r ShedReason) String() string {
	switch r {
	case ShedNone:
		return "none"
	case ShedQueueFull:
		return "queue_full"
	case ShedDeadline:
		return "deadline"
	case ShedTimeout:
		return "timeout"
	case ShedWrite:
		return "write_brownout"
	case ShedRead:
		return "read_brownout"
	default:
		return "unknown"
	}
}

// ShedReasons lists every reason a request can actually be shed for, in
// metric registration order.
func ShedReasons() []ShedReason {
	return []ShedReason{ShedQueueFull, ShedDeadline, ShedTimeout, ShedWrite, ShedRead}
}

// LimiterConfig configures a Limiter. The zero value of Target disables
// latency adaptation: the limit stays pinned at MaxLimit and only the
// bounded wait queue sheds load.
type LimiterConfig struct {
	// Target is the p99 service-latency budget. When more than 1% of an
	// epoch's samples exceed it the limit is multiplicatively decreased.
	Target time.Duration
	// MinLimit floors the adaptive decrease. Default 1.
	MinLimit int
	// MaxLimit caps the adaptive increase and is the starting limit.
	// Default 1024.
	MaxLimit int
	// MaxPending bounds the number of requests allowed to wait for a
	// slot; arrivals beyond it are shed immediately. Default 4*MaxLimit.
	MaxPending int
}

// Limiter is an AIMD concurrency limiter. Requests Acquire a slot before
// dispatch and Release it with the observed service latency afterwards.
// Epoch adaptation (Tick) compares the fraction of samples over Target
// against a 1% budget: a breached epoch multiplies the limit by 4/5, a
// clean one adds limit/10. Requests that cannot get a slot immediately
// wait in a bounded FIFO queue; sustained breaches raise the pressure
// level, which first drops writes and then answers reads miss-fast.
type Limiter struct {
	target     time.Duration
	waitBudget time.Duration
	minLimit   int64
	maxLimit   int64
	maxPending int

	limit    atomic.Int64
	inflight atomic.Int64
	pending  atomic.Int64 // len(waiters), mirrored for lock-free reads

	mu      sync.Mutex
	waiters []chan struct{}

	ewmaService  atomic.Int64 // ns
	epochN       atomic.Int64
	epochOver    atomic.Int64
	breachStreak atomic.Int64
	breachEpochs atomic.Int64

	admitted atomic.Int64
	sheds    [numShedReasons]atomic.Int64
}

// NewLimiter validates cfg, applies defaults, and returns a Limiter whose
// limit starts at MaxLimit (optimistic: shrink only on evidence).
func NewLimiter(cfg LimiterConfig) *Limiter {
	if cfg.MaxLimit <= 0 {
		cfg.MaxLimit = 1024
	}
	if cfg.MinLimit <= 0 {
		cfg.MinLimit = 1
	}
	if cfg.MinLimit > cfg.MaxLimit {
		cfg.MinLimit = cfg.MaxLimit
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 4 * cfg.MaxLimit
	}
	wait := cfg.Target / 2
	if wait <= 0 {
		wait = 50 * time.Millisecond
	}
	l := &Limiter{
		target:     cfg.Target,
		waitBudget: wait,
		minLimit:   int64(cfg.MinLimit),
		maxLimit:   int64(cfg.MaxLimit),
		maxPending: cfg.MaxPending,
	}
	l.limit.Store(int64(cfg.MaxLimit))
	return l
}

// Level reports the current brownout pressure level: 0 healthy, 1 drop
// writes first, 2 additionally answer reads miss-fast. Level 1 engages
// when the breach streak reaches 2 epochs or the wait queue is at least
// half full; level 2 when the streak reaches 4.
func (l *Limiter) Level() int {
	if l == nil {
		return 0
	}
	streak := l.breachStreak.Load()
	if streak >= 4 {
		return 2
	}
	if streak >= 2 || l.pending.Load()*2 >= int64(l.maxPending) {
		return 1
	}
	return 0
}

// tryAcquire is the lock-free fast path. It refuses to jump ahead of
// queued waiters so admission stays FIFO.
func (l *Limiter) tryAcquire() bool {
	if l.pending.Load() > 0 {
		return false
	}
	for {
		cur := l.inflight.Load()
		if cur >= l.limit.Load() {
			return false
		}
		if l.inflight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func (l *Limiter) shed(r ShedReason) ShedReason {
	l.sheds[r].Add(1)
	return r
}

// Acquire claims a concurrency slot, waiting up to the wait budget
// (Target/2) in a bounded FIFO queue if the limit is saturated. It
// returns ShedNone on admission or the reason the request must be shed.
// A nil Limiter admits everything.
func (l *Limiter) Acquire(write bool) ShedReason {
	if l == nil {
		return ShedNone
	}
	lvl := l.Level()
	if write {
		if lvl >= 1 {
			return l.shed(ShedWrite)
		}
	} else if lvl >= 2 {
		return l.shed(ShedRead)
	}
	if l.tryAcquire() {
		l.admitted.Add(1)
		return ShedNone
	}

	l.mu.Lock()
	// A release may have raced the fast path; re-check under the lock.
	if len(l.waiters) == 0 && l.inflight.Load() < l.limit.Load() {
		l.inflight.Add(1)
		l.mu.Unlock()
		l.admitted.Add(1)
		return ShedNone
	}
	if len(l.waiters) >= l.maxPending {
		l.mu.Unlock()
		return l.shed(ShedQueueFull)
	}
	if l.target > 0 {
		// Deadline-aware admission: if the expected queue wait already
		// exceeds the wait budget, a fast error beats a doomed wait.
		lim := max(l.limit.Load(), 1)
		est := time.Duration(l.ewmaService.Load()) * time.Duration(len(l.waiters)+1) / time.Duration(lim)
		if est > l.waitBudget {
			l.mu.Unlock()
			return l.shed(ShedDeadline)
		}
	}
	w := make(chan struct{})
	l.waiters = append(l.waiters, w)
	l.pending.Store(int64(len(l.waiters)))
	l.mu.Unlock()

	t := time.NewTimer(l.waitBudget)
	defer t.Stop()
	select {
	case <-w:
		l.admitted.Add(1)
		return ShedNone
	case <-t.C:
		l.mu.Lock()
		for i, ww := range l.waiters {
			if ww == w {
				l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
				l.pending.Store(int64(len(l.waiters)))
				l.mu.Unlock()
				return l.shed(ShedTimeout)
			}
		}
		l.mu.Unlock()
		// A handoff raced the timeout and already popped us: the slot
		// is ours, so consume it and proceed admitted.
		<-w
		l.admitted.Add(1)
		return ShedNone
	}
}

// Release returns a slot and records the observed service latency. If a
// waiter is queued and the (possibly shrunken) limit still covers current
// inflight, the slot is handed to the oldest waiter directly.
func (l *Limiter) Release(lat time.Duration) {
	if l == nil {
		return
	}
	ns := lat.Nanoseconds()
	if old := l.ewmaService.Load(); old == 0 {
		l.ewmaService.Store(ns)
	} else {
		l.ewmaService.Store(old - old/8 + ns/8)
	}
	l.epochN.Add(1)
	if l.target > 0 && lat > l.target {
		l.epochOver.Add(1)
	}

	l.mu.Lock()
	if len(l.waiters) > 0 && l.inflight.Load() <= l.limit.Load() {
		w := l.waiters[0]
		l.waiters = l.waiters[1:]
		l.pending.Store(int64(len(l.waiters)))
		l.mu.Unlock()
		close(w)
		return
	}
	l.mu.Unlock()
	l.inflight.Add(-1)
}

// Tick closes the current adaptation epoch: multiplicative decrease on a
// breached epoch (more than 1% of samples over Target), additive increase
// otherwise. Idle and clean epochs decay the breach streak so brownout
// modes disengage once pressure subsides.
func (l *Limiter) Tick() {
	n := l.epochN.Swap(0)
	over := l.epochOver.Swap(0)
	if n == 0 {
		l.decayStreak()
		return
	}
	lim := l.limit.Load()
	if l.target > 0 && over*100 > n {
		l.limit.Store(max(lim*4/5, l.minLimit))
		l.breachStreak.Add(1)
		l.breachEpochs.Add(1)
		return
	}
	l.limit.Store(min(lim+max(1, lim/10), l.maxLimit))
	l.decayStreak()
}

func (l *Limiter) decayStreak() {
	if s := l.breachStreak.Load(); s > 0 {
		l.breachStreak.Store(s - 1)
	}
}

// Start runs Tick every interval on a background goroutine and returns an
// idempotent stop function.
func (l *Limiter) Start(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				l.Tick()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// ShedCount returns the number of requests shed for reason r.
func (l *Limiter) ShedCount(r ShedReason) int64 {
	if l == nil {
		return 0
	}
	return l.sheds[r].Load()
}

// LimiterSnapshot is a point-in-time view for stats and admin surfaces.
type LimiterSnapshot struct {
	Limit        int
	Inflight     int
	Pending      int
	Level        int
	EWMAService  time.Duration
	Admitted     int64
	ShedTotal    int64
	BreachEpochs int64
}

// Snapshot returns the limiter's current state and counters.
func (l *Limiter) Snapshot() LimiterSnapshot {
	if l == nil {
		return LimiterSnapshot{}
	}
	var shed int64
	for _, r := range ShedReasons() {
		shed += l.sheds[r].Load()
	}
	return LimiterSnapshot{
		Limit:        int(l.limit.Load()),
		Inflight:     int(l.inflight.Load()),
		Pending:      int(l.pending.Load()),
		Level:        l.Level(),
		EWMAService:  time.Duration(l.ewmaService.Load()),
		Admitted:     l.admitted.Load(),
		ShedTotal:    shed,
		BreachEpochs: l.breachEpochs.Load(),
	}
}

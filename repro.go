package repro

import (
	"fmt"

	"repro/internal/concurrent"
	"repro/internal/core"
	_ "repro/internal/policy/all" // register every eviction policy
	"repro/internal/policy/qdlp"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Policy is a single-threaded eviction policy driven by Access calls; see
// the policy catalogue in PolicyNames. Policies returned by this package
// are not safe for concurrent use — use the Concurrent constructors for
// thread-safe caches.
type Policy = core.Policy

// Request is one cache reference.
type Request = trace.Request

// Trace is an in-memory request sequence.
type Trace = trace.Trace

// Result summarizes a simulation run.
type Result = sim.Result

// Family is a synthetic workload model of one of the paper's Table-1
// dataset collections.
type Family = workload.Family

// QDLPOptions tunes QD-LP-FIFO (probation share, ghost size, CLOCK bits).
type QDLPOptions = qdlp.Options

// The paper's two evaluated cache sizes, as fractions of the trace's
// unique object count.
const (
	SmallCacheFrac = workload.SmallCacheFrac
	LargeCacheFrac = workload.LargeCacheFrac
)

// NewPolicy constructs a registered eviction policy by name.
func NewPolicy(name string, capacity int) (Policy, error) {
	return core.New(name, capacity)
}

// PolicyNames lists every registered eviction policy.
func PolicyNames() []string { return core.Names() }

// NewQDLPFIFO returns the paper's QD-LP-FIFO with canonical parameters
// (10% probationary FIFO, main-sized ghost, 2-bit CLOCK main).
func NewQDLPFIFO(capacity int) Policy { return qdlp.New(capacity) }

// NewQDLPFIFOWithOptions returns QD-LP-FIFO with explicit parameters.
func NewQDLPFIFOWithOptions(capacity int, opts QDLPOptions) Policy {
	return qdlp.NewWithOptions(capacity, opts)
}

// Families returns the ten synthetic dataset families in the paper's
// Table-1 order.
func Families() []Family { return workload.Families() }

// Generate produces a deterministic synthetic trace from the named family.
// It panics on an unknown family name; use workload.FamilyByName for a
// checked lookup.
func Generate(family string, seed int64, objects, requests int) *Trace {
	fam, ok := workload.FamilyByName(family)
	if !ok {
		panic(fmt.Sprintf("repro: unknown workload family %q", family))
	}
	return fam.Generate(seed, objects, requests)
}

// CacheSize returns the cache capacity for a trace with the given unique
// object count at a size fraction (e.g. SmallCacheFrac).
func CacheSize(uniqueObjects int, frac float64) int {
	return workload.CacheSize(uniqueObjects, frac)
}

// Run replays a trace against a policy and returns the result.
func Run(p Policy, tr *Trace) Result { return sim.Run(p, tr) }

// ConcurrentCache is a thread-safe fixed-capacity cache.
type ConcurrentCache = concurrent.Cache

// CacheStats is a point-in-time snapshot of a concurrent cache's operation
// counters and occupancy.
type CacheStats = concurrent.Snapshot

// ConcurrentOption configures NewConcurrent; see WithShards, WithClockBits,
// and WithQDLPOptions in internal/concurrent.
type ConcurrentOption = concurrent.Option

// NewConcurrent constructs a registered thread-safe cache by policy name —
// the concurrent counterpart of NewPolicy:
//
//	c, err := repro.NewConcurrent("qdlp", 1<<20, repro.WithConcurrentShards(64))
func NewConcurrent(policy string, capacity int, opts ...ConcurrentOption) (ConcurrentCache, error) {
	return concurrent.New(policy, capacity, opts...)
}

// ConcurrentNames lists every registered thread-safe cache policy.
func ConcurrentNames() []string { return concurrent.Names() }

// WithConcurrentShards sets the shard count for NewConcurrent.
func WithConcurrentShards(n int) ConcurrentOption { return concurrent.WithShards(n) }

// NewConcurrentLRU returns a sharded thread-safe LRU cache (exclusive lock
// per hit — the paper's scalability strawman).
func NewConcurrentLRU(capacity, shards int) (ConcurrentCache, error) {
	return concurrent.NewLRU(capacity, shards)
}

// NewConcurrentClock returns a sharded thread-safe k-bit CLOCK cache
// (shared-lock, one-atomic-store hit path).
func NewConcurrentClock(capacity, shards, bits int) (ConcurrentCache, error) {
	return concurrent.NewClock(capacity, shards, bits)
}

// NewConcurrentQDLP returns the thread-safe QD-LP-FIFO cache.
func NewConcurrentQDLP(capacity, shards int) (ConcurrentCache, error) {
	return concurrent.NewQDLP(capacity, shards)
}
